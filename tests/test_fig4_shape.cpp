// Statistical validation of the paper's headline experimental claims
// (Sec. 7 "General Observations") as CI-checkable assertions. Runs a
// reduced but statistically meaningful version of the Figure 4 sweep
// (deterministic seeds -> no flakiness) and asserts the *ordering* facts
// the paper reports, with error-bar-aware margins.
#include <gtest/gtest.h>

#include "gen/registry.hpp"
#include "harness/sweep.hpp"

namespace dvbp {
namespace {

struct Cell {
  std::vector<harness::PolicyCell> stats;
  double mean(std::size_t p) const { return stats[p].ratio.mean(); }
  double se(std::size_t p) const { return stats[p].ratio.stderr_mean(); }
};

// Policy indices in the sweep below.
constexpr std::size_t kMtf = 0, kFf = 1, kBf = 2, kNf = 3, kLf = 4,
                      kRf = 5, kWf = 6;

Cell run_cell(std::size_t d, std::int64_t mu) {
  gen::UniformParams params;
  params.d = d;
  params.n = 1000;
  params.mu = mu;
  params.span = 1000;
  params.bin_size = 100;
  harness::SweepConfig cfg;
  cfg.trials = 60;
  cfg.seed = 20230419;
  return Cell{harness::run_policy_sweep(
      gen::make_generator("uniform", params, cfg.seed),
      {"MoveToFront", "FirstFit", "BestFit", "NextFit", "LastFit",
       "RandomFit", "WorstFit"},
      cfg)};
}

TEST(Fig4Shape, MoveToFrontBeatsFirstFitAtLargeMu) {
  for (std::size_t d : {1u, 2u}) {
    const Cell cell = run_cell(d, 100);
    EXPECT_LT(cell.mean(kMtf) + 2.0 * cell.se(kMtf),
              cell.mean(kFf) + 2.0 * cell.se(kFf))
        << "d=" << d;
  }
}

TEST(Fig4Shape, TopGroupIsMtfFfBf) {
  // MTF, FF, BF all within a small band of each other and clearly below
  // NextFit and WorstFit at mu = 100.
  const Cell cell = run_cell(2, 100);
  const double top = std::max({cell.mean(kMtf), cell.mean(kFf),
                               cell.mean(kBf)});
  // Every top-group member beats Worst Fit; MTF and BF beat it clearly
  // (FF sits between: ~1.357 vs WF's ~1.375 at this cell).
  EXPECT_LT(top, cell.mean(kWf));
  EXPECT_LT(cell.mean(kMtf) + 0.02, cell.mean(kWf));
  EXPECT_LT(cell.mean(kBf) + 0.02, cell.mean(kWf));
  EXPECT_LT(top + 0.1, cell.mean(kNf));
  // "nearly identical": FF and BF within 0.06 of each other.
  EXPECT_NEAR(cell.mean(kFf), cell.mean(kBf), 0.06);
}

TEST(Fig4Shape, NextFitDegradesMonotonicallyWithMu) {
  double prev = 0.0;
  for (std::int64_t mu : {1, 5, 10, 100}) {
    const Cell cell = run_cell(1, mu);
    EXPECT_GT(cell.mean(kNf), prev) << "mu=" << mu;
    prev = cell.mean(kNf);
  }
  EXPECT_GT(prev, 1.4);  // paper shows ~1.5 at mu=100, d=1
}

TEST(Fig4Shape, NextFitGapOverMtfWidensWithMu) {
  const Cell small = run_cell(1, 2);
  const Cell large = run_cell(1, 100);
  const double gap_small = small.mean(kNf) - small.mean(kMtf);
  const double gap_large = large.mean(kNf) - large.mean(kMtf);
  EXPECT_GT(gap_large, 3.0 * gap_small);
}

TEST(Fig4Shape, WorstFitTrailsEveryFullListPolicyAtLargeMu) {
  const Cell cell = run_cell(1, 200);
  for (std::size_t p : {kMtf, kFf, kBf, kLf, kRf}) {
    EXPECT_LT(cell.mean(p), cell.mean(kWf)) << "policy index " << p;
  }
}

TEST(Fig4Shape, RatiosGrowWithDimension) {
  const Cell d1 = run_cell(1, 10);
  const Cell d5 = run_cell(5, 10);
  for (std::size_t p : {kMtf, kFf, kNf}) {
    EXPECT_GT(d5.mean(p), d1.mean(p)) << "policy index " << p;
  }
}

TEST(Fig4Shape, MuOneAllFullListPoliciesCoincide) {
  // At mu = 1 (all durations equal) the full-list Any Fit policies are
  // near-indistinguishable (paper's panels at mu = 1 are flat).
  const Cell cell = run_cell(2, 1);
  for (std::size_t p : {kFf, kBf, kLf, kRf, kWf}) {
    EXPECT_NEAR(cell.mean(p), cell.mean(kMtf), 0.01);
  }
}

}  // namespace
}  // namespace dvbp
