// Deep semantic tests for the policy implementations: multi-step MRU
// evolution for Move To Front, Next Fit's release discipline, cross-policy
// divergence matrices on crafted scenarios, and exhaustive behaviour on
// every adversarial gadget for every policy (policies not targeted must
// escape).
#include <gtest/gtest.h>

#include "core/policies/move_to_front.hpp"
#include "core/policies/next_fit.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "gen/adversarial.hpp"
#include "gen/uniform.hpp"

namespace dvbp {
namespace {

// ---- Move To Front: multi-step MRU evolution --------------------------------

TEST(MtfDeep, PackingMovesBinAheadOfNewerBins) {
  // Open three bins, then pack into the oldest; it must become the MRU
  // choice for the next item.
  Instance inst(1);
  inst.add(0.0, 20.0, RVec{0.8});  // 0 -> B0
  inst.add(0.0, 20.0, RVec{0.8});  // 1 -> B1
  inst.add(0.0, 20.0, RVec{0.8});  // 2 -> B2 (MRU: B2 B1 B0)
  inst.add(1.0, 20.0, RVec{0.1});  // 3 -> B2 (front, fits: 0.9)
  inst.add(2.0, 20.0, RVec{0.15}); // 4: B2 would hit 1.05 -> next in MRU
                                   //    is B1 (0.95) -> B1 moves front
  inst.add(3.0, 20.0, RVec{0.04}); // 5 -> B1 (now front, 0.99)
  const auto result = simulate(inst, "MoveToFront", {.audit = true});
  EXPECT_EQ(result.packing.bin_of(3), 2u);
  EXPECT_EQ(result.packing.bin_of(4), 1u);
  EXPECT_EQ(result.packing.bin_of(5), 1u);
}

TEST(MtfDeep, ClosedLeaderHandsOffToNextMru) {
  MoveToFrontPolicy policy(true);
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.9});  // B0
  inst.add(1.0, 3.0, RVec{0.9});   // B1 (leader), closes at 3
  simulate(inst, policy);
  const auto& h = policy.leader_history();
  // Leaders: B0 at 0 (item 0), B1 at 1 (item 1), back to B0 at 3 when B1
  // closes (no cause item), none at 10.
  using LC = MoveToFrontPolicy::LeaderChange;
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], (LC{0.0, 0u, 0u}));
  EXPECT_EQ(h[1], (LC{1.0, 1u, 1u}));
  EXPECT_EQ(h[2], (LC{3.0, 0u, kNoItem}));
  EXPECT_EQ(h[3], (LC{10.0, kNoBin, kNoItem}));
}

TEST(MtfDeep, MruOrderEmptyAfterRun) {
  MoveToFrontPolicy policy;
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.5});
  simulate(inst, policy);
  EXPECT_TRUE(policy.mru_order().empty());
}

TEST(MtfDeep, HistoryDisabledByDefault) {
  MoveToFrontPolicy policy;
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.5});
  simulate(inst, policy);
  EXPECT_TRUE(policy.leader_history().empty());
}

// ---- Next Fit: release discipline -------------------------------------------

TEST(NextFitDeep, ReleasedBinStaysOpenUntilItemsDepart) {
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.6});  // B0 current
  inst.add(1.0, 2.0, RVec{0.6});   // releases B0 -> B1
  const auto result = simulate(inst, "NextFit", {.audit = true});
  // B0 released at t=1 but open until its item departs at 10.
  EXPECT_DOUBLE_EQ(result.packing.bins()[0].closed, 10.0);
  EXPECT_DOUBLE_EQ(result.cost, 10.0 + 1.0);
}

TEST(NextFitDeep, OnlyOneCurrentBinEver) {
  // After many conflicting arrivals, the number of bins equals the number
  // of "does not fit current" events plus one.
  Instance inst(1);
  for (int i = 0; i < 10; ++i) inst.add(0.0, 5.0, RVec{0.6});
  const auto result = simulate(inst, "NextFit");
  EXPECT_EQ(result.bins_opened, 10u);  // 0.6 + 0.6 > 1 every time
}

TEST(NextFitDeep, RefitsCurrentAfterDepartures) {
  // Departures free capacity in the *current* bin, which NF may reuse.
  Instance inst(1);
  inst.add(0.0, 2.0, RVec{0.6});  // B0 current
  inst.add(0.0, 9.0, RVec{0.3});  // B0 (fits: 0.9)
  inst.add(3.0, 9.0, RVec{0.6});  // item 0 departed at 2 -> fits B0 again
  const auto result = simulate(inst, "NextFit", {.audit = true});
  EXPECT_EQ(result.bins_opened, 1u);
  EXPECT_EQ(result.packing.bin_of(2), 0u);
}

// ---- Divergence matrix -------------------------------------------------------

// A scenario where all seven Sec. 7 policies make pairwise-documented
// choices for the probe item: three open bins with loads 0.7 / 0.5 / 0.3
// (B0 oldest). MTF's MRU order is B2, B1, B0 after the opens.
Instance three_bin_probe() {
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.7});   // B0
  inst.add(0.0, 10.0, RVec{0.5});   // B1 (0.5+0.7 > 1)
  inst.add(0.0, 10.0, RVec{0.3});   // B2? 0.3 fits B1! -- adjust below.
  return inst;
}

TEST(DivergenceMatrix, ProbePlacementPerPolicy) {
  // Build three bins with loads 0.7, 0.6, 0.55 (mutually exclusive opens),
  // then probe with 0.25 (fits all three).
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.7});
  inst.add(0.0, 10.0, RVec{0.6});
  inst.add(0.0, 10.0, RVec{0.55});
  inst.add(1.0, 2.0, RVec{0.25});
  const ItemId probe = 3;

  EXPECT_EQ(simulate(inst, "FirstFit").packing.bin_of(probe), 0u);
  EXPECT_EQ(simulate(inst, "LastFit").packing.bin_of(probe), 2u);
  EXPECT_EQ(simulate(inst, "BestFit").packing.bin_of(probe), 0u);   // 0.7
  EXPECT_EQ(simulate(inst, "WorstFit").packing.bin_of(probe), 2u);  // 0.55
  EXPECT_EQ(simulate(inst, "MoveToFront").packing.bin_of(probe), 2u);
  EXPECT_EQ(simulate(inst, "NextFit").packing.bin_of(probe), 2u);  // current
  // RandomFit picks one of the three, deterministically per seed.
  const BinId r = simulate(inst, "RandomFit", {}, 7).packing.bin_of(probe);
  EXPECT_LE(r, 2u);
}

TEST(DivergenceMatrix, UnusedHelperCompiles) {
  // three_bin_probe documents a pitfall (0.3 fits B1); keep it exercised.
  const Instance inst = three_bin_probe();
  EXPECT_EQ(simulate(inst, "FirstFit").bins_opened, 2u);
}

// ---- Every policy on every gadget --------------------------------------------

// The gadgets must trap their targets (asserted in test_adversarial); here
// we assert the *non-targets* escape cheaply, which is the other half of
// the story and a strong cross-check of policy semantics.

TEST(GadgetMatrix, FirstFitEscapesMtfGadget) {
  const auto adv = gen::mtf_lower_bound(10, 8.0);
  const double mtf = simulate(adv.instance, "MoveToFront").cost;
  for (const char* name : {"FirstFit", "BestFit"}) {
    EXPECT_LT(simulate(adv.instance, name).cost * 3.0, mtf) << name;
  }
}

TEST(GadgetMatrix, AnyFitGadgetTrapsEvenRandomFit) {
  // Thm 5 leaves no choices: every full-list Any Fit policy, including the
  // randomized one, must produce the identical cost.
  const auto adv = gen::anyfit_lower_bound(3, 2, 6.0);
  const double ff = simulate(adv.instance, "FirstFit").cost;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_NEAR(simulate(adv.instance, "RandomFit", {}, seed).cost, ff, 1e-9);
  }
}

TEST(GadgetMatrix, NextFitAlsoFallsForTheAnyFitGadget) {
  // NF packs the R0 pairs identically (each even item fits the current
  // bin), opening the same dk bins; only its handling of R1 differs.
  const auto adv = gen::anyfit_lower_bound(3, 2, 6.0);
  const auto result = simulate(adv.instance, "NextFit");
  EXPECT_GE(result.bins_opened, adv.predicted_bins);
}

TEST(GadgetMatrix, MtfGadgetCostsExactlyPredicted) {
  for (std::size_t n : {2, 5, 12}) {
    const auto adv = gen::mtf_lower_bound(n, 5.0);
    EXPECT_DOUBLE_EQ(simulate(adv.instance, "MoveToFront").cost,
                     adv.predicted_online_cost);
  }
}

TEST(GadgetMatrix, BestFitGadgetBinsAreSingletonsAfterPhase) {
  const auto adv = gen::bestfit_unbounded(8);
  const auto result = simulate(adv.instance, "BestFit", {.audit = true});
  // Each bin: one filler + one tiny.
  for (const BinRecord& bin : result.packing.bins()) {
    EXPECT_EQ(bin.items.size(), 2u);
  }
}

// ---- Policy statefulness hygiene ---------------------------------------------

TEST(PolicyHygiene, EveryRegistryPolicyIsReusableAcrossInstances) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 120;
  params.mu = 6;
  params.span = 60;
  params.bin_size = 8;
  const Instance a = gen::uniform_instance(params, 1);
  const Instance b = gen::uniform_instance(params, 2);
  for (const char* name :
       {"MoveToFront", "FirstFit", "BestFit", "NextFit", "LastFit",
        "RandomFit", "WorstFit", "HarmonicFit", "DurationClassFit",
        "MinExtensionFit", "NoisyMinExtensionFit:0.5"}) {
    PolicyPtr policy = make_policy(name, 77);
    const double a1 = simulate(a, *policy).cost;
    simulate(b, *policy);
    const double a2 = simulate(a, *policy).cost;
    EXPECT_DOUBLE_EQ(a1, a2) << name;
  }
}

}  // namespace
}  // namespace dvbp
