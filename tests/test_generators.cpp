// Tests for the workload generators: Table 2 envelope compliance,
// determinism, distributional sanity of the trace extensions, and the
// generator registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "gen/registry.hpp"
#include "gen/traces.hpp"
#include "gen/uniform.hpp"

namespace dvbp {
namespace {

using gen::UniformParams;

UniformParams table2_params(std::size_t d, std::int64_t mu) {
  UniformParams p;
  p.d = d;
  p.n = 1000;
  p.mu = mu;
  p.span = 1000;
  p.bin_size = 100;
  return p;
}

TEST(UniformGen, RespectsTable2Envelope) {
  const UniformParams p = table2_params(2, 10);
  const Instance inst = gen::uniform_instance(p, /*seed=*/7);
  ASSERT_EQ(inst.size(), 1000u);
  EXPECT_EQ(inst.dim(), 2u);
  EXPECT_FALSE(inst.validate().has_value());
  for (const Item& r : inst.items()) {
    // Integral arrival in [0, T - mu].
    EXPECT_GE(r.arrival, 0.0);
    EXPECT_LE(r.arrival, 990.0);
    EXPECT_DOUBLE_EQ(r.arrival, std::floor(r.arrival));
    // Integral duration in [1, mu].
    const Time dur = r.duration();
    EXPECT_GE(dur, 1.0);
    EXPECT_LE(dur, 10.0);
    EXPECT_DOUBLE_EQ(dur, std::floor(dur));
    // Sizes on the {1..B}/B grid.
    for (std::size_t j = 0; j < r.size.dim(); ++j) {
      EXPECT_GE(r.size[j], 0.01 - 1e-12);
      EXPECT_LE(r.size[j], 1.0 + 1e-12);
      const double units = r.size[j] * 100.0;
      EXPECT_NEAR(units, std::round(units), 1e-9);
    }
  }
  // Items arrive in order.
  for (std::size_t i = 0; i + 1 < inst.size(); ++i) {
    EXPECT_LE(inst[i].arrival, inst[i + 1].arrival);
  }
}

TEST(UniformGen, MuOneGivesUnitDurations) {
  const Instance inst = gen::uniform_instance(table2_params(1, 1), 3);
  for (const Item& r : inst.items()) EXPECT_DOUBLE_EQ(r.duration(), 1.0);
}

TEST(UniformGen, DeterministicPerSeedAndTrial) {
  const UniformParams p = table2_params(2, 5);
  const Instance a = gen::uniform_instance(p, 42, 7);
  const Instance b = gen::uniform_instance(p, 42, 7);
  const Instance c = gen::uniform_instance(p, 42, 8);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal_ab = true;
  bool all_equal_ac = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    all_equal_ab &= a[i].arrival == b[i].arrival && a[i].size == b[i].size &&
                    a[i].departure == b[i].departure;
    all_equal_ac &= a[i].arrival == c[i].arrival && a[i].size == c[i].size;
  }
  EXPECT_TRUE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);  // different trial -> different stream
}

TEST(UniformGen, ValidatesParameters) {
  UniformParams p;
  p.d = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = UniformParams{};
  p.mu = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = UniformParams{};
  p.mu = 2000;  // > span
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = UniformParams{};
  p.bin_size = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(UniformGen, SizesRoughlyUniform) {
  // Mean normalized size should be ~ (B+1)/(2B) = 0.505.
  const Instance inst = gen::uniform_instance(table2_params(1, 5), 99);
  double mean = 0.0;
  for (const Item& r : inst.items()) mean += r.size[0];
  mean /= static_cast<double>(inst.size());
  // n = 1000 gives a ~0.009 standard error; 0.035 is ~4 sigma.
  EXPECT_NEAR(mean, 0.505, 0.035);
}

TEST(ZipfGen, FavorsShortDurations) {
  gen::ZipfDurationParams zp{table2_params(1, 100), 1.5};
  Xoshiro256pp rng(11);
  const Instance inst = gen::zipf_duration_instance(zp, rng);
  EXPECT_FALSE(inst.validate().has_value());
  std::size_t ones = 0;
  for (const Item& r : inst.items()) {
    EXPECT_GE(r.duration(), 1.0);
    EXPECT_LE(r.duration(), 100.0);
    if (r.duration() == 1.0) ++ones;
  }
  // Under Zipf(1.5) over {1..100}, P(1) = 1/sum(v^-1.5) ~ 0.42; uniform
  // would give 1%.
  EXPECT_GT(ones, inst.size() / 4);
}

TEST(BurstyGen, ArrivalsClusterIntoBursts) {
  gen::BurstyArrivalParams bp{table2_params(1, 10), 5, 3};
  Xoshiro256pp rng(13);
  const Instance inst = gen::bursty_arrival_instance(bp, rng);
  EXPECT_FALSE(inst.validate().has_value());
  // At most bursts * (width+1) distinct arrival values.
  std::map<Time, int> arrivals;
  for (const Item& r : inst.items()) arrivals[r.arrival]++;
  EXPECT_LE(arrivals.size(), 5u * 4u);
}

TEST(BurstyGen, RejectsZeroBursts) {
  gen::BurstyArrivalParams bp{table2_params(1, 10), 0, 3};
  Xoshiro256pp rng(13);
  EXPECT_THROW(gen::bursty_arrival_instance(bp, rng), std::invalid_argument);
}

TEST(CorrelatedGen, RhoOneMakesDimensionsEqual) {
  gen::CorrelatedSizeParams cp{table2_params(3, 5), 1.0};
  Xoshiro256pp rng(17);
  const Instance inst = gen::correlated_size_instance(cp, rng);
  for (const Item& r : inst.items()) {
    EXPECT_NEAR(r.size[0], r.size[1], 1e-12);
    EXPECT_NEAR(r.size[1], r.size[2], 1e-12);
  }
}

TEST(CorrelatedGen, RhoValidated) {
  gen::CorrelatedSizeParams cp{table2_params(2, 5), 1.5};
  Xoshiro256pp rng(17);
  EXPECT_THROW(gen::correlated_size_instance(cp, rng),
               std::invalid_argument);
}

TEST(CorrelatedGen, CorrelationIncreasesWithRho) {
  auto corr = [](const Instance& inst) {
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    const double n = static_cast<double>(inst.size());
    for (const Item& r : inst.items()) {
      sx += r.size[0];
      sy += r.size[1];
      sxx += r.size[0] * r.size[0];
      syy += r.size[1] * r.size[1];
      sxy += r.size[0] * r.size[1];
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    const double vx = sxx / n - (sx / n) * (sx / n);
    const double vy = syy / n - (sy / n) * (sy / n);
    return cov / std::sqrt(vx * vy);
  };
  Xoshiro256pp rng_lo(19);
  Xoshiro256pp rng_hi(19);
  gen::CorrelatedSizeParams lo{table2_params(2, 5), 0.0};
  gen::CorrelatedSizeParams hi{table2_params(2, 5), 0.9};
  const double c_lo = corr(gen::correlated_size_instance(lo, rng_lo));
  const double c_hi = corr(gen::correlated_size_instance(hi, rng_hi));
  EXPECT_LT(c_lo, 0.2);
  EXPECT_GT(c_hi, 0.7);
}

TEST(DiurnalGen, PeakTroughContrastMatchesAmplitude) {
  gen::DiurnalArrivalParams dp{table2_params(1, 1), 0.8, 0.0, 0.0};
  dp.base.n = 20000;  // enough mass per phase bucket
  Xoshiro256pp rng(23);
  const Instance inst = gen::diurnal_arrival_instance(dp, rng);
  EXPECT_FALSE(inst.validate().has_value());
  // One sine cycle over [0, T-mu): first half (sin >= 0) should carry
  // (integral of 1+0.8 sin) / total ~ (pi + 1.6) / (2 pi) ~ 0.755.
  const double window = 999.0;
  std::size_t first_half = 0;
  for (const Item& r : inst.items()) {
    EXPECT_GE(r.arrival, 0.0);
    EXPECT_LE(r.arrival, window);
    if (r.arrival < window / 2.0) ++first_half;
  }
  const double frac =
      static_cast<double>(first_half) / static_cast<double>(inst.size());
  EXPECT_NEAR(frac, 0.7546, 0.02);
}

TEST(DiurnalGen, AmplitudeZeroIsUniform) {
  gen::DiurnalArrivalParams dp{table2_params(1, 5), 0.0, 0.0, 0.0};
  dp.base.n = 20000;
  Xoshiro256pp rng(29);
  const Instance inst = gen::diurnal_arrival_instance(dp, rng);
  std::size_t first_half = 0;
  for (const Item& r : inst.items()) {
    if (r.arrival < (1000.0 - 5.0) / 2.0) ++first_half;
  }
  EXPECT_NEAR(static_cast<double>(first_half) /
                  static_cast<double>(inst.size()),
              0.5, 0.02);
}

TEST(DiurnalGen, ValidatesAmplitude) {
  gen::DiurnalArrivalParams dp{table2_params(1, 5), 1.0, 0.0, 0.0};
  Xoshiro256pp rng(1);
  EXPECT_THROW(gen::diurnal_arrival_instance(dp, rng),
               std::invalid_argument);
}

TEST(GenRegistry, AllNamesConstruct) {
  const UniformParams base = table2_params(2, 5);
  for (const std::string& name : gen::generator_names()) {
    const auto generate = gen::make_generator(name, base, 1);
    const Instance inst = generate(0);
    EXPECT_EQ(inst.size(), base.n) << name;
    EXPECT_FALSE(inst.validate().has_value()) << name;
  }
}

TEST(GenRegistry, RejectsUnknownName) {
  EXPECT_THROW(gen::make_generator("poisson", table2_params(1, 5), 1),
               std::invalid_argument);
}

TEST(GenRegistry, GeneratorsAreTrialDeterministic) {
  const auto generate =
      gen::make_generator("uniform", table2_params(1, 5), 123);
  const Instance a = generate(4);
  const Instance b = generate(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

}  // namespace
}  // namespace dvbp
