// Tests for Interval and IntervalSet (half-open interval algebra).
#include "core/interval.hpp"
#include "core/interval_set.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace dvbp {
namespace {

TEST(Interval, LengthAndEmpty) {
  EXPECT_DOUBLE_EQ(Interval(1.0, 3.5).length(), 2.5);
  EXPECT_TRUE(Interval(2.0, 2.0).empty());
  EXPECT_TRUE(Interval(3.0, 2.0).empty());
  EXPECT_DOUBLE_EQ(Interval(3.0, 2.0).length(), 0.0);
}

TEST(Interval, HalfOpenContains) {
  Interval iv(1.0, 2.0);
  EXPECT_TRUE(iv.contains(1.0));   // closed at the left
  EXPECT_TRUE(iv.contains(1.999));
  EXPECT_FALSE(iv.contains(2.0));  // open at the right
  EXPECT_FALSE(iv.contains(0.999));
}

TEST(Interval, Overlaps) {
  EXPECT_TRUE(Interval(0, 2).overlaps(Interval(1, 3)));
  EXPECT_FALSE(Interval(0, 1).overlaps(Interval(1, 2)));  // touching only
  EXPECT_TRUE(Interval(0, 5).overlaps(Interval(2, 3)));
  EXPECT_FALSE(Interval(0, 1).overlaps(Interval(2, 3)));
}

TEST(Interval, Covers) {
  EXPECT_TRUE(Interval(0, 5).covers(Interval(1, 4)));
  EXPECT_TRUE(Interval(0, 5).covers(Interval(0, 5)));
  EXPECT_FALSE(Interval(0, 5).covers(Interval(1, 6)));
}

TEST(Interval, Intersect) {
  EXPECT_EQ(Interval(0, 3).intersect(Interval(1, 5)), Interval(1, 3));
  EXPECT_TRUE(Interval(0, 1).intersect(Interval(2, 3)).empty());
}

TEST(Interval, Hull) {
  EXPECT_EQ(Interval(0, 1).hull(Interval(3, 4)), Interval(0, 4));
  EXPECT_EQ(Interval(2, 2).hull(Interval(3, 4)), Interval(3, 4));  // empty lhs
  EXPECT_EQ(Interval(3, 4).hull(Interval(2, 2)), Interval(3, 4));  // empty rhs
}

TEST(Interval, ToString) {
  EXPECT_EQ(Interval(0.5, 2).to_string(), "[0.5, 2)");
}

TEST(IntervalSet, EmptySet) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.measure(), 0.0);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.contains(0.0));
  EXPECT_TRUE(s.hull().empty());
}

TEST(IntervalSet, AddDisjoint) {
  IntervalSet s;
  s.add({0, 1});
  s.add({2, 3});
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.measure(), 2.0);
  EXPECT_EQ(s.hull(), Interval(0, 3));
}

TEST(IntervalSet, AddIgnoresEmpty) {
  IntervalSet s;
  s.add({1, 1});
  s.add({2, 1});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, MergeOverlap) {
  IntervalSet s;
  s.add({0, 2});
  s.add({1, 3});
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.measure(), 3.0);
}

TEST(IntervalSet, MergeAdjacent) {
  IntervalSet s;
  s.add({0, 1});
  s.add({1, 2});
  EXPECT_EQ(s.count(), 1u);  // [0,1) U [1,2) = [0,2)
  EXPECT_DOUBLE_EQ(s.measure(), 2.0);
}

TEST(IntervalSet, BridgeMultipleParts) {
  IntervalSet s;
  s.add({0, 1});
  s.add({2, 3});
  s.add({4, 5});
  s.add({0.5, 4.5});  // swallows everything
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.measure(), 5.0);
}

TEST(IntervalSet, InsertBeforeFirst) {
  IntervalSet s;
  s.add({5, 6});
  s.add({0, 1});
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.parts().front(), Interval(0, 1));
}

TEST(IntervalSet, Contains) {
  IntervalSet s;
  s.add({0, 1});
  s.add({2, 3});
  EXPECT_TRUE(s.contains(0.5));
  EXPECT_FALSE(s.contains(1.0));  // half-open
  EXPECT_FALSE(s.contains(1.5));
  EXPECT_TRUE(s.contains(2.0));
  EXPECT_FALSE(s.contains(3.0));
  EXPECT_FALSE(s.contains(-0.5));
}

TEST(IntervalSet, MergeSets) {
  IntervalSet a;
  a.add({0, 1});
  a.add({4, 5});
  IntervalSet b;
  b.add({1, 2});
  b.add({6, 7});
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.measure(), 4.0);
}

TEST(IntervalSet, ClearResets) {
  IntervalSet s;
  s.add({0, 10});
  s.clear();
  EXPECT_TRUE(s.empty());
}

// Property test: the measure of a random union equals a brute-force grid
// estimate within the grid resolution.
TEST(IntervalSet, RandomizedMeasureAgainstGrid) {
  Xoshiro256pp rng(7);
  for (int rep = 0; rep < 20; ++rep) {
    IntervalSet s;
    std::vector<Interval> raw;
    for (int i = 0; i < 30; ++i) {
      // Grid-aligned endpoints make the brute-force count exact.
      const double lo = static_cast<double>(rng.uniform_int(0, 990));
      const double hi = lo + static_cast<double>(rng.uniform_int(0, 9));
      s.add({lo, hi});
      raw.emplace_back(lo, hi);
    }
    double brute = 0.0;
    for (int t = 0; t < 1000; ++t) {
      for (const Interval& iv : raw) {
        if (iv.contains(static_cast<double>(t))) {
          brute += 1.0;
          break;
        }
      }
    }
    EXPECT_DOUBLE_EQ(s.measure(), brute);
    // Parts must be sorted and pairwise disjoint with gaps.
    for (std::size_t i = 0; i + 1 < s.parts().size(); ++i) {
      EXPECT_LT(s.parts()[i].hi, s.parts()[i + 1].lo);
    }
  }
}

}  // namespace
}  // namespace dvbp
