// Load-generator smoke tests against a real loopback server: closed-loop
// accounting must be exact (every slot terminates, ok + typed errors ==
// requests_sent), open loop must pace and drain cleanly, and the latency
// order statistics must be ordered. Throughput numbers live in
// bench/bench_net.cpp; here we only assert structure.
#include "net/loadgen.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cloud/sharded_dispatcher.hpp"
#include "core/policies/registry.hpp"
#include "gen/uniform.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "trace/writer.hpp"

namespace dvbp::net {
namespace {

cloud::ShardedDispatcher::PolicyFactory first_fit_factory() {
  return [](std::size_t) { return make_policy("FirstFit"); };
}

cloud::ShardedOptions service_options(std::size_t shards) {
  cloud::ShardedOptions opts;
  opts.shards = shards;
  opts.router = cloud::RouterKind::kRoundRobin;
  return opts;
}

void check_accounting(const LoadgenResult& r) {
  EXPECT_EQ(r.ok + r.retry_later + r.shutting_down + r.bad_request +
                r.unknown_job + r.other_errors,
            r.requests_sent);
  EXPECT_EQ(r.samples, r.ok);
  EXPECT_GT(r.elapsed_s, 0.0);
  if (r.samples > 0) {
    EXPECT_LE(r.p50_ns, r.p99_ns);
    EXPECT_LE(r.p99_ns, r.p999_ns);
    EXPECT_LE(r.p999_ns, r.max_ns);
    EXPECT_GT(r.p50_ns, 0.0);
  }
}

TEST(NetLoadgen, ClosedLoopCountsAddUp) {
  cloud::ShardedDispatcher service(2, first_fit_factory(),
                                   service_options(2));
  PlacementServer server(service);

  LoadgenOptions opts;
  opts.port = server.port();
  opts.connections = 2;
  opts.window = 16;
  opts.requests_per_connection = 1500;
  opts.depart_fraction = 0.4;

  const LoadgenResult r = run_loadgen(opts);
  // Closed loop retries RETRY_LATER internally, so every slot ends in a
  // terminal status and the totals are exact.
  EXPECT_EQ(r.ok + r.shutting_down + r.bad_request + r.unknown_job +
                r.other_errors,
            2u * 1500u);
  EXPECT_EQ(r.ok, 2u * 1500u);  // nothing here can fail
  check_accounting(r);
  EXPECT_GT(r.throughput_rps, 0.0);

  // The service really applied that many ops.
  service.drain();
  EXPECT_EQ(service.ops_applied(), 2u * 1500u);

  // Wind down over the wire and confirm the hash is a real value.
  Client client("127.0.0.1", server.port());
  const Response drained = client.drain();
  ASSERT_EQ(drained.status, Status::kOk);
  EXPECT_NE(drained.packing_hash, 0u);
  server.wait();
}

TEST(NetLoadgen, OpenLoopPacesAndDrains) {
  cloud::ShardedDispatcher service(2, first_fit_factory(),
                                   service_options(2));
  PlacementServer server(service);

  LoadgenOptions opts;
  opts.port = server.port();
  opts.connections = 1;
  opts.open_loop_rate = 5000.0;
  opts.duration_s = 0.4;
  opts.depart_fraction = 0.3;

  const LoadgenResult r = run_loadgen(opts);
  check_accounting(r);
  EXPECT_GT(r.requests_sent, 0u);
  EXPECT_GT(r.ok, 0u);
  // The pacer must stay in the ballpark of rate * duration even when the
  // single-core box is busy: bounded above by the schedule itself.
  EXPECT_LE(r.requests_sent, 5000.0 * 0.4 * 1.5 + 64);
  EXPECT_GE(r.elapsed_s, 0.3);

  server.stop();
}

TEST(NetLoadgen, TraceReplayDeliversEveryEvent) {
  // Replay a binary trace over the wire: items are partitioned across
  // connections by id, each item's departure waits for its own arrival's
  // JobId, and every one of the 2n events must terminate OK -- the
  // service ends up having applied exactly the trace.
  const Instance inst = [] {
    gen::UniformParams params;
    params.n = 300;
    params.d = 2;
    params.mu = 8;
    params.span = 50;
    params.bin_size = 6;
    return gen::uniform_instance(params, 0xC0FFEE);
  }();
  const std::string trace_path =
      ::testing::TempDir() + "loadgen_replay.trc";
  trace::TraceWriter::write_instance(inst, trace_path);

  cloud::ShardedDispatcher service(2, first_fit_factory(),
                                   service_options(2));
  PlacementServer server(service);

  LoadgenOptions opts;
  opts.port = server.port();
  opts.connections = 3;
  opts.window = 8;
  opts.trace_path = trace_path;

  const LoadgenResult r = run_loadgen(opts);
  check_accounting(r);
  EXPECT_EQ(r.ok, 2 * inst.size());
  service.drain();
  EXPECT_EQ(service.ops_applied(), 2 * inst.size());
  server.stop();
  std::remove(trace_path.c_str());
}

TEST(NetLoadgen, DeterministicSeedsGiveSameOpCount) {
  // Same seed, same script: the number of ops applied by the service is a
  // deterministic function of (seed, connections, requests, fraction).
  std::uint64_t applied[2] = {0, 0};
  for (int round = 0; round < 2; ++round) {
    cloud::ShardedDispatcher service(2, first_fit_factory(),
                                     service_options(1));
    PlacementServer server(service);
    LoadgenOptions opts;
    opts.port = server.port();
    opts.connections = 1;
    opts.window = 8;
    opts.requests_per_connection = 500;
    opts.seed = 99;
    const LoadgenResult r = run_loadgen(opts);
    EXPECT_EQ(r.ok, 500u);
    service.drain();
    applied[round] = service.ops_applied();
    server.stop();
  }
  EXPECT_EQ(applied[0], applied[1]);
}

}  // namespace
}  // namespace dvbp::net
