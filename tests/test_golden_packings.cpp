// Golden-packing differential suite: pins the engine's exact packing
// decisions against hashes recorded from the engine before the O(1)
// bin-indexing refactor (PR "constant-time bin indexing"). Any change to
// placement semantics -- bin chosen, opening order, open/close times --
// changes a hash and fails here.
//
// Coverage: all 10 registered policies x (uniform d in {1,2,5} plus the
// high-dimension set {7,8,9,16} straddling RVec's inline/heap boundary at
// kInlineDim = 8, + the four adversarial constructions), fixed seeds.
// Each case is additionally replayed through the streaming Dispatcher and
// must match the batch engine bin-for-bin. The no-SIMD CI job re-runs
// this suite with -DDVBP_DISABLE_SIMD=ON and must produce identical
// hashes (scalar/SIMD bit-exactness contract, core/open_bin_table.hpp).
//
// Regenerating goldens (only legitimate after an *intentional* semantic
// change): DVBP_DUMP_GOLDEN=1 ./test_golden_packings | grep '^    {' then
// paste into golden_packings.inc.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/packing.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "gen/adversarial.hpp"
#include "gen/uniform.hpp"
#include "packing_hash.hpp"

namespace dvbp {
namespace {

constexpr std::uint64_t kPolicySeed = 0xD1CEu;

const char* const kPolicies[] = {
    "MoveToFront", "FirstFit",        "BestFit",     "NextFit",
    "LastFit",     "RandomFit",       "WorstFit",    "MinExtensionFit",
    "HarmonicFit", "DurationClassFit"};

std::vector<std::pair<std::string, Instance>> golden_workloads() {
  std::vector<std::pair<std::string, Instance>> out;
  // 7/8/9 bracket RVec's kInlineDim = 8 (last all-inline, boundary, first
  // heap-backed); 16 exercises the pure-heap path and full SIMD lanes.
  for (std::size_t d : {1u, 2u, 5u, 7u, 8u, 9u, 16u}) {
    gen::UniformParams params;
    params.d = d;
    params.n = 400;
    params.mu = 12;
    params.span = 100;
    params.bin_size = 9;
    out.emplace_back("uniform_d" + std::to_string(d),
                     gen::uniform_instance(params, 0xA11CE + d));
  }
  out.emplace_back("adv_anyfit",
                   gen::anyfit_lower_bound(/*k=*/6, /*d=*/2, /*mu=*/5.0)
                       .instance);
  out.emplace_back("adv_nextfit",
                   gen::nextfit_lower_bound(/*k=*/6, /*d=*/2, /*mu=*/4.0)
                       .instance);
  out.emplace_back("adv_mtf", gen::mtf_lower_bound(/*n=*/8, /*mu=*/6.0)
                                  .instance);
  out.emplace_back("adv_bestfit", gen::bestfit_unbounded(/*k=*/10).instance);
  return out;
}

// fnv / packing_hash moved to packing_hash.hpp (shared with the
// crash-recovery parity suite).

struct GoldenEntry {
  const char* workload;
  const char* policy;
  std::uint64_t hash;
};

const GoldenEntry kGolden[] = {
#include "golden_packings.inc"
};

std::uint64_t expected_hash(const std::string& workload,
                            const std::string& policy) {
  for (const GoldenEntry& e : kGolden) {
    if (workload == e.workload && policy == e.policy) return e.hash;
  }
  ADD_FAILURE() << "no golden entry for " << workload << "/" << policy;
  return 0;
}

TEST(GoldenPackings, EngineMatchesPreRefactorGoldens) {
  const bool dump = std::getenv("DVBP_DUMP_GOLDEN") != nullptr;
  for (const auto& [name, inst] : golden_workloads()) {
    for (const char* policy_name : kPolicies) {
      PolicyPtr policy = make_policy(policy_name, kPolicySeed);
      const SimResult sim = simulate(inst, *policy, {.audit = true});
      const std::uint64_t h = packing_hash(sim.packing);
      if (dump) {
        printf("    {\"%s\", \"%s\", 0x%016llXull},\n", name.c_str(),
               policy_name, static_cast<unsigned long long>(h));
        continue;
      }
      EXPECT_EQ(h, expected_hash(name, policy_name))
          << name << "/" << policy_name
          << ": packing diverged from the pre-refactor engine";
    }
  }
  if (dump) GTEST_SKIP() << "golden dump mode; comparisons skipped";
}

TEST(GoldenPackings, DispatcherReplayMatchesEngineBinForBin) {
  for (const auto& [name, inst] : golden_workloads()) {
    const auto events = build_event_stream(inst);
    for (const char* policy_name : kPolicies) {
      PolicyPtr batch_policy = make_policy(policy_name, kPolicySeed);
      const SimResult sim = simulate(inst, *batch_policy);

      PolicyPtr live_policy = make_policy(policy_name, kPolicySeed);
      Dispatcher dispatcher(inst.dim(), *live_policy);
      for (const Event& ev : events) {
        const Item& item = inst[ev.item];
        if (ev.kind == EventKind::kArrival) {
          const auto admission =
              dispatcher.arrive(item.arrival, item.size, item.departure);
          ASSERT_EQ(admission.bin, sim.packing.bin_of(item.id))
              << name << "/" << policy_name << " item " << item.id;
        } else {
          dispatcher.depart(ev.time, item.id);
        }
      }
      ASSERT_EQ(dispatcher.records().size(), sim.packing.num_bins())
          << name << "/" << policy_name;
      for (std::size_t b = 0; b < sim.packing.num_bins(); ++b) {
        const BinRecord& live = dispatcher.records()[b];
        const BinRecord& batch = sim.packing.bins()[b];
        EXPECT_EQ(live.id, batch.id) << name << "/" << policy_name;
        EXPECT_DOUBLE_EQ(live.opened, batch.opened)
            << name << "/" << policy_name << " bin " << b;
        EXPECT_DOUBLE_EQ(live.closed, batch.closed)
            << name << "/" << policy_name << " bin " << b;
        EXPECT_EQ(live.items, batch.items)
            << name << "/" << policy_name << " bin " << b;
      }
      EXPECT_EQ(dispatcher.open_bins(), 0u) << name << "/" << policy_name;
    }
  }
}

}  // namespace
}  // namespace dvbp
