// Differential tests: independent reference implementations cross-checked
// against the production engine on randomized workloads, plus mutation
// fuzzing of the packing auditor (every corruption of a valid packing must
// be caught).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "opt/lower_bounds.hpp"
#include "stats/rng.hpp"

namespace dvbp {
namespace {

// ---- Reference First Fit ---------------------------------------------------
// A from-scratch, simulator-free First Fit: processes the event stream with
// naive data structures. Any divergence from the engine indicates a bug in
// one of them.

struct RefBin {
  RVec load;
  std::vector<ItemId> active;
  Time opened = 0;
  Time closed = 0;
  bool open = true;
};

double reference_first_fit(const Instance& inst,
                           std::vector<BinId>* assignment_out) {
  std::vector<RefBin> bins;
  std::vector<BinId> assignment(inst.size(), kNoBin);
  for (const Event& ev : build_event_stream(inst)) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      bool placed = false;
      for (std::size_t b = 0; b < bins.size() && !placed; ++b) {
        if (!bins[b].open) continue;
        if (bins[b].load.fits_with(item.size)) {
          bins[b].load += item.size;
          bins[b].active.push_back(item.id);
          assignment[item.id] = static_cast<BinId>(b);
          placed = true;
        }
      }
      if (!placed) {
        RefBin bin;
        bin.load = item.size;
        bin.active.push_back(item.id);
        bin.opened = ev.time;
        bins.push_back(std::move(bin));
        assignment[item.id] = static_cast<BinId>(bins.size() - 1);
      }
    } else {
      RefBin& bin = bins[assignment[item.id]];
      bin.load -= item.size;
      bin.load.clamp_nonnegative();
      bin.active.erase(
          std::find(bin.active.begin(), bin.active.end(), item.id));
      if (bin.active.empty()) {
        bin.open = false;
        bin.closed = ev.time;
      }
    }
  }
  double cost = 0.0;
  for (const RefBin& bin : bins) cost += bin.closed - bin.opened;
  if (assignment_out) *assignment_out = assignment;
  return cost;
}

class DifferentialFfTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(DifferentialFfTest, EngineMatchesReferenceExactly) {
  const auto [d, seed] = GetParam();
  gen::UniformParams params;
  params.d = d;
  params.n = 400;
  params.mu = 12;
  params.span = 100;
  params.bin_size = 9;
  const Instance inst = gen::uniform_instance(params, seed);

  std::vector<BinId> ref_assignment;
  const double ref_cost = reference_first_fit(inst, &ref_assignment);

  const SimResult engine = simulate(inst, "FirstFit", {.audit = true});
  EXPECT_NEAR(engine.cost, ref_cost, 1e-9);
  EXPECT_EQ(engine.packing.assignment(), ref_assignment);
}

INSTANTIATE_TEST_SUITE_P(
    Random, DifferentialFfTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5),
                       ::testing::Values<std::uint64_t>(101, 202, 303, 404,
                                                        505)));

// ---- Dispatcher vs simulate() under resource augmentation -------------------
// The streaming Dispatcher must reproduce the batch engine bin-for-bin not
// only at capacity 1 (covered by test_dispatcher) but for every augmented
// capacity 1 + beta, where the fit predicate and therefore every placement
// decision changes.

class AugmentedDifferentialTest
    : public ::testing::TestWithParam<std::tuple<double, const char*>> {};

TEST_P(AugmentedDifferentialTest, DispatcherMatchesEngineBinForBin) {
  const auto [beta, policy_name] = GetParam();
  const double capacity = 1.0 + beta;
  gen::UniformParams params;
  params.d = 2;
  params.n = 300;
  params.mu = 10;
  params.span = 80;
  params.bin_size = 7;
  const Instance inst = gen::uniform_instance(params, 99);

  SimOptions opts;
  opts.bin_capacity = capacity;
  PolicyPtr batch_policy = make_policy(policy_name);
  const SimResult sim = simulate(inst, *batch_policy, opts);

  PolicyPtr live_policy = make_policy(policy_name);
  Dispatcher dispatcher(inst.dim(), *live_policy, capacity);
  for (const Event& ev : build_event_stream(inst)) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      const auto admission =
          dispatcher.arrive(item.arrival, item.size, item.departure);
      ASSERT_EQ(admission.job, item.id);
      EXPECT_EQ(admission.bin, sim.packing.bin_of(item.id))
          << "item " << item.id << " at beta=" << beta;
    } else {
      dispatcher.depart(ev.time, item.id);
    }
  }

  ASSERT_EQ(dispatcher.records().size(), sim.packing.num_bins());
  for (std::size_t b = 0; b < sim.packing.num_bins(); ++b) {
    const BinRecord& live = dispatcher.records()[b];
    const BinRecord& batch = sim.packing.bins()[b];
    EXPECT_EQ(live.id, batch.id);
    EXPECT_DOUBLE_EQ(live.opened, batch.opened) << "bin " << b;
    EXPECT_DOUBLE_EQ(live.closed, batch.closed) << "bin " << b;
    EXPECT_EQ(live.items, batch.items) << "bin " << b;
  }
  EXPECT_EQ(dispatcher.open_bins(), 0u);
  EXPECT_NEAR(dispatcher.cost_so_far(inst.last_departure()), sim.cost, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Augmented, AugmentedDifferentialTest,
    ::testing::Combine(::testing::Values(0.25, 0.5, 1.0),
                       ::testing::Values("FirstFit", "MoveToFront", "BestFit",
                                         "NextFit")));

// ---- Reference lb_height via brute-force time grid --------------------------

TEST(DifferentialLb, HeightMatchesTimeGridOnIntegralInstances) {
  // All generator timestamps are integral, so evaluating the load at
  // t + 0.5 for every integer t integrates ceil(linf) exactly.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    gen::UniformParams params;
    params.d = 2;
    params.n = 120;
    params.mu = 6;
    params.span = 50;
    params.bin_size = 8;
    const Instance inst = gen::uniform_instance(params, seed);
    double grid = 0.0;
    for (int t = 0; t < 60; ++t) {
      const RVec load = inst.load_at(static_cast<Time>(t) + 0.5);
      grid += std::ceil(load.linf() - 1e-9);
    }
    EXPECT_NEAR(lb_height(inst), grid, 1e-9) << "seed " << seed;
  }
}

// ---- Auditor mutation fuzzing ------------------------------------------------

Packing valid_packing(const Instance& inst) {
  return simulate(inst, "FirstFit").packing;
}

Instance fuzz_instance(std::uint64_t seed) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 60;
  params.mu = 6;
  params.span = 30;
  params.bin_size = 5;
  return gen::uniform_instance(params, seed);
}

TEST(AuditorFuzz, ValidPackingAccepted) {
  const Instance inst = fuzz_instance(7);
  EXPECT_FALSE(valid_packing(inst).validate(inst).has_value());
}

TEST(AuditorFuzz, ReassigningBoundaryItemsIsCaught) {
  // Moving the item that defines a bin's closing time into another bin
  // always desynchronizes the source bin's recorded usage period, so the
  // auditor must flag every such mutation.
  const Instance inst = fuzz_instance(7);
  const Packing good = valid_packing(inst);
  if (good.num_bins() < 2) GTEST_SKIP();
  Xoshiro256pp rng(13);
  std::size_t caught = 0;
  std::size_t attempts = 0;
  for (int rep = 0; rep < 20; ++rep) {
    auto assignment = good.assignment();
    auto bins = good.bins();
    const auto from = static_cast<BinId>(
        rng.uniform_int(0, static_cast<std::int64_t>(bins.size()) - 1));
    const auto to = static_cast<BinId>(
        rng.uniform_int(0, static_cast<std::int64_t>(bins.size()) - 1));
    if (to == from) continue;
    // Victim: the latest-departing item of `from`.
    ItemId victim = bins[from].items.front();
    for (ItemId r : bins[from].items) {
      if (inst[r].departure > inst[victim].departure) victim = r;
    }
    ++attempts;
    auto& src = bins[from].items;
    src.erase(std::find(src.begin(), src.end(), victim));
    bins[to].items.push_back(victim);
    assignment[victim] = to;
    const Packing mutated(std::move(assignment), std::move(bins));
    if (mutated.validate(inst).has_value()) ++caught;
  }
  EXPECT_EQ(caught, attempts);
  EXPECT_GT(attempts, 0u);
}

TEST(AuditorFuzz, ShrinkingUsagePeriodIsCaught) {
  const Instance inst = fuzz_instance(11);
  const Packing good = valid_packing(inst);
  auto bins = good.bins();
  bins.front().closed -= 0.5;
  const Packing mutated(good.assignment(), std::move(bins));
  EXPECT_TRUE(mutated.validate(inst).has_value());
}

TEST(AuditorFuzz, ExtendingUsagePeriodIsCaught) {
  const Instance inst = fuzz_instance(11);
  const Packing good = valid_packing(inst);
  auto bins = good.bins();
  bins.back().opened -= 1.0;
  const Packing mutated(good.assignment(), std::move(bins));
  EXPECT_TRUE(mutated.validate(inst).has_value());
}

TEST(AuditorFuzz, DroppingAnItemIsCaught) {
  const Instance inst = fuzz_instance(19);
  const Packing good = valid_packing(inst);
  auto bins = good.bins();
  for (auto& bin : bins) {
    if (bin.items.size() > 1) {
      bin.items.pop_back();
      break;
    }
  }
  const Packing mutated(good.assignment(), std::move(bins));
  EXPECT_TRUE(mutated.validate(inst).has_value());
}

TEST(AuditorFuzz, DuplicatingAnItemIsCaught) {
  const Instance inst = fuzz_instance(23);
  const Packing good = valid_packing(inst);
  auto bins = good.bins();
  bins.front().items.push_back(bins.front().items.front());
  const Packing mutated(good.assignment(), std::move(bins));
  EXPECT_TRUE(mutated.validate(inst).has_value());
}

// ---- Engine invariants under randomized stress --------------------------------

TEST(EngineStress, TimelineIntegralEqualsCost) {
  // integral of (#open bins) dt over the timeline == total cost, for every
  // policy -- two independent accountings of the same quantity.
  const Instance inst = fuzz_instance(31);
  for (const char* name : {"MoveToFront", "FirstFit", "NextFit", "BestFit",
                           "HarmonicFit", "DurationClassFit"}) {
    const SimResult r = simulate(inst, name, {.record_timeline = true});
    double integral = 0.0;
    for (std::size_t i = 0; i + 1 < r.timeline.size(); ++i) {
      integral += static_cast<double>(r.timeline[i].second) *
                  (r.timeline[i + 1].first - r.timeline[i].first);
    }
    EXPECT_NEAR(integral, r.cost, 1e-6) << name;
  }
}

TEST(EngineStress, BinsOpenedNeverBelowPeak) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance inst = fuzz_instance(seed + 41);
    const SimResult r = simulate(inst, "RandomFit", {}, seed);
    EXPECT_GE(r.bins_opened, r.max_open_bins);
    EXPECT_LE(r.bins_opened, inst.size());
  }
}

}  // namespace
}  // namespace dvbp
