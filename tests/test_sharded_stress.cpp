// Concurrency stress for the sharded placement service: racing producers,
// a polling reader, and shutdown with work still queued. Runs under TSan in
// CI (see .github/workflows/ci.yml, thread-sanitizer job).
//
// Functional assertions (checked after quiescence):
//  * every admitted job is placed in exactly one bin that lists it once;
//  * no bin ever exceeds capacity in any dimension (event-sweep audit of
//    the applied, possibly clamped, timestamps);
//  * bin open/close bookkeeping matches the items' applied intervals;
//  * destroying the service with non-empty queues still applies every op.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/policies/registry.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"

namespace dvbp {
namespace {

constexpr std::size_t kProducers = 4;
constexpr std::size_t kItemsPerProducer = 10000;
constexpr std::size_t kShards = 4;
constexpr std::size_t kDim = 2;

/// One producer's closed loop: arrivals with random sizes/durations, its
/// own jobs departed when their time comes. Times race across producers;
/// the service clamps per shard.
void produce(cloud::ShardedDispatcher& service, std::uint64_t seed) {
  Xoshiro256pp rng(seed);
  Time now = 0.0;
  struct Pending {
    Time when;
    JobId job;
  };
  std::deque<Pending> pending;
  for (std::size_t i = 0; i < kItemsPerProducer; ++i) {
    now += rng.uniform(0.0, 0.25);
    while (!pending.empty() && pending.front().when <= now) {
      service.depart(pending.front().when, pending.front().job);
      pending.pop_front();
    }
    const RVec size{0.05 + 0.45 * rng.uniform(),
                    0.05 + 0.45 * rng.uniform()};
    const Time duration = 1.0 + 5.0 * rng.uniform();
    const JobId job = service.arrive(now, size);
    // Departures are enqueued in increasing `when`, so the deque stays
    // sorted per producer (a real client departs jobs as they finish).
    const Time when = std::max(now + duration,
                               pending.empty() ? 0.0 : pending.back().when);
    pending.push_back({when, job});
  }
  for (const Pending& p : pending) service.depart(p.when, p.job);
}

TEST(ShardedStress, RacingProducersPlaceEveryItemExactlyOnce) {
  obs::MetricRegistry registry;
  cloud::ShardedOptions options;
  options.shards = kShards;
  options.router = cloud::RouterKind::kLeastUsage;
  options.queue_capacity = 512;  // small enough to exercise backpressure
  options.metrics = &registry;
  cloud::ShardedDispatcher service(
      kDim, [](std::size_t) { return make_policy("FirstFit"); }, options);

  std::atomic<bool> done{false};
  // Reader: polls the global view and the metrics while producers race.
  std::thread reader([&] {
    double last_cost = 0.0;
    while (!done.load(std::memory_order_acquire)) {
      const double cost = service.cost_so_far(1e18);
      // Cost at a fixed far-future probe only grows as bins open/stay open.
      EXPECT_GE(cost, 0.0);
      (void)last_cost;
      last_cost = cost;
      (void)service.open_bins();
      (void)service.jobs_active();
      (void)registry.to_json();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back(
        [&service, p] { produce(service, 0xABCD + 17 * p); });
  }
  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  service.drain();
  constexpr std::size_t kTotal = kProducers * kItemsPerProducer;
  ASSERT_EQ(service.jobs_admitted(), kTotal);
  EXPECT_EQ(service.jobs_active(), 0u);
  EXPECT_EQ(service.open_bins(), 0u);
  EXPECT_EQ(service.ops_enqueued(), 2 * kTotal);  // arrival + departure each
  EXPECT_EQ(service.ops_applied(), 2 * kTotal);

  // --- placed exactly once -------------------------------------------------
  const Packing merged = service.snapshot();
  ASSERT_EQ(merged.assignment().size(), kTotal);
  std::vector<std::uint8_t> listed(kTotal, 0);
  std::size_t total_listed = 0;
  for (const BinRecord& rec : merged.bins()) {
    for (ItemId item : rec.items) {
      ASSERT_LT(item, kTotal);
      ASSERT_EQ(listed[item], 0) << "job " << item << " placed twice";
      listed[item] = 1;
      ++total_listed;
      EXPECT_EQ(merged.assignment()[item], rec.id);
    }
  }
  EXPECT_EQ(total_listed, kTotal);

  // --- capacity + bookkeeping audit per shard ------------------------------
  // Replays each shard's applied intervals: at no sweep point may a bin's
  // load exceed capacity in any dimension, and the recorded usage period
  // must equal [first arrival, last departure).
  for (std::size_t s = 0; s < kShards; ++s) {
    const Packing local = service.shard_packing(s);
    for (const BinRecord& rec : local.bins()) {
      struct Edge {
        Time t;
        bool arrival;
        const Item* item;
      };
      std::vector<Edge> edges;
      Time first_arrival = 0.0, last_departure = 0.0;
      bool first = true;
      for (ItemId local_id : rec.items) {
        const Item& item = service.job_item(service.global_job(
            s, local_id));
        ASSERT_LE(item.arrival, item.departure);
        edges.push_back({item.arrival, true, &item});
        edges.push_back({item.departure, false, &item});
        first_arrival = first ? item.arrival
                              : std::min(first_arrival, item.arrival);
        last_departure = std::max(last_departure, item.departure);
        first = false;
      }
      EXPECT_DOUBLE_EQ(rec.opened, first_arrival)
          << "shard " << s << " bin " << rec.id;
      EXPECT_DOUBLE_EQ(rec.closed, last_departure)
          << "shard " << s << " bin " << rec.id;
      // Departures first at equal timestamps (half-open intervals).
      std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
        if (a.t != b.t) return a.t < b.t;
        return a.arrival < b.arrival;
      });
      RVec load(kDim);
      for (const Edge& e : edges) {
        if (e.arrival) {
          load += e.item->size;
          for (std::size_t dim = 0; dim < kDim; ++dim) {
            ASSERT_LE(load[dim], 1.0 + kCapacityEps)
                << "shard " << s << " bin " << rec.id << " overfull at t="
                << e.t;
          }
        } else {
          load -= e.item->size;
        }
      }
    }
  }

  // --- metrics -------------------------------------------------------------
  std::uint64_t applied_total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::string prefix = "dvbp.shard." + std::to_string(s) + ".";
    applied_total += registry.counter(prefix + "ops_applied_total").value();
    // (batch_size uses custom bounds, so re-looking it up here would need
    // them; the latency histogram uses the registry defaults.)
    EXPECT_GT(registry.histogram(prefix + "placement_latency_ns").count(), 0u)
        << "shard " << s;
  }
  EXPECT_EQ(applied_total, 2 * kTotal);
  EXPECT_EQ(registry.counter("dvbp.alloc.placements_total").value(), kTotal);
}

/// FirstFit wrapped with a short sleep per decision, so queues are always
/// backed up when the service is torn down.
class SlowPolicy final : public Policy {
 public:
  explicit SlowPolicy(std::uint64_t seed)
      : inner_(make_policy("FirstFit", seed)) {}
  std::string_view name() const noexcept override { return "SlowFirstFit"; }
  BinId select_bin(Time now, const Item& item,
                   std::span<const BinView> open_bins) override {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    return inner_->select_bin(now, item, open_bins);
  }
  void on_open(Time now, BinId bin, const Item& first) override {
    inner_->on_open(now, bin, first);
  }
  void on_pack(Time now, BinId bin, const Item& item) override {
    inner_->on_pack(now, bin, item);
  }
  void on_depart(Time now, BinId bin, const Item& item,
                 bool closed) override {
    inner_->on_depart(now, bin, item, closed);
  }
  void reset() override { inner_->reset(); }

 private:
  PolicyPtr inner_;
};

TEST(ShardedStress, ShutdownWithNonEmptyQueueAppliesEverything) {
  constexpr std::size_t kJobs = 800;
  obs::MetricRegistry registry;  // outlives the service
  std::uint64_t enqueued = 0;
  {
    cloud::ShardedOptions options;
    options.shards = kShards;
    options.router = cloud::RouterKind::kRoundRobin;
    options.queue_capacity = kJobs;  // producers never block
    options.metrics = &registry;
    cloud::ShardedDispatcher service(
        kDim, [](std::size_t) { return std::make_unique<SlowPolicy>(1); },
        options);
    for (std::size_t j = 0; j < kJobs; ++j) {
      service.arrive(static_cast<Time>(j) * 0.01, RVec{0.3, 0.3});
    }
    enqueued = service.ops_enqueued();
    // ~200us per placement x 800/4 per shard >> enqueue time: the queues
    // are necessarily non-empty right now. Destroy without draining.
    EXPECT_LT(service.ops_applied(), enqueued);
  }
  ASSERT_EQ(enqueued, kJobs);
  std::uint64_t applied = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    applied += registry
                   .counter("dvbp.shard." + std::to_string(s) +
                            ".ops_applied_total")
                   .value();
  }
  EXPECT_EQ(applied, kJobs);
  EXPECT_EQ(registry.counter("dvbp.alloc.placements_total").value(), kJobs);
}

TEST(ShardedStress, DepartValidationIsEagerAndExactlyOnce) {
  cloud::ShardedOptions options;
  options.shards = 2;
  cloud::ShardedDispatcher service(
      kDim, [](std::size_t) { return make_policy("FirstFit"); }, options);
  const JobId job = service.arrive(0.0, RVec{0.5, 0.5});
  EXPECT_THROW(service.depart(1.0, job + 1), std::invalid_argument);
  service.depart(1.0, job);
  EXPECT_THROW(service.depart(2.0, job), std::invalid_argument);
  service.drain();
  EXPECT_EQ(service.jobs_active(), 0u);
}

}  // namespace
}  // namespace dvbp
