// Tests for the simulation engine: costs, bin lifecycle, audits, timeline,
// engine-enforced feasibility, and the parameterized audit sweep that runs
// every policy over randomized instances with full offline validation.
#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include "core/policies/registry.hpp"
#include "gen/uniform.hpp"

namespace dvbp {
namespace {

TEST(Simulator, SingleItemCost) {
  Instance inst(1);
  inst.add(1.0, 4.0, RVec{0.5});
  const auto result = simulate(inst, "FirstFit", {.audit = true});
  EXPECT_DOUBLE_EQ(result.cost, 3.0);
  EXPECT_EQ(result.bins_opened, 1u);
  EXPECT_EQ(result.max_open_bins, 1u);
  const BinRecord& bin = result.packing.bins().front();
  EXPECT_DOUBLE_EQ(bin.opened, 1.0);
  EXPECT_DOUBLE_EQ(bin.closed, 4.0);
}

TEST(Simulator, EmptyInstance) {
  Instance inst(1);
  const auto result = simulate(inst, "FirstFit", {.audit = true});
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
  EXPECT_EQ(result.bins_opened, 0u);
}

TEST(Simulator, RejectsInvalidPolicyName) {
  Instance inst(1);
  inst.add(0, 1, RVec{0.5});
  EXPECT_THROW(simulate(inst, "NopeFit"), std::invalid_argument);
}

TEST(Simulator, CostEqualsSumOfBinSpans) {
  Instance inst(2);
  inst.add(0.0, 3.0, RVec{0.7, 0.2});
  inst.add(1.0, 5.0, RVec{0.7, 0.2});  // can't share with item 0
  inst.add(2.0, 4.0, RVec{0.2, 0.2});
  const auto result = simulate(inst, "FirstFit", {.audit = true});
  double spans = 0.0;
  for (const auto& b : result.packing.bins()) spans += b.usage_time();
  EXPECT_DOUBLE_EQ(result.cost, spans);
}

TEST(Simulator, BinClosesWhenLastItemDeparts) {
  Instance inst(1);
  inst.add(0.0, 2.0, RVec{0.4});
  inst.add(1.0, 5.0, RVec{0.4});  // same bin under FirstFit
  const auto result = simulate(inst, "FirstFit", {.audit = true});
  EXPECT_EQ(result.bins_opened, 1u);
  EXPECT_DOUBLE_EQ(result.packing.bins()[0].closed, 5.0);
  EXPECT_DOUBLE_EQ(result.cost, 5.0);
}

TEST(Simulator, ClosedBinNeverReused) {
  // Item 1 arrives exactly when item 0 departs: half-open semantics say the
  // bin is already closed, so a new bin must be opened.
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.4});
  inst.add(1.0, 2.0, RVec{0.4});
  const auto result = simulate(inst, "FirstFit", {.audit = true});
  EXPECT_EQ(result.bins_opened, 2u);
  EXPECT_EQ(result.packing.bin_of(1), 1u);
}

TEST(Simulator, BackToBackCostCountsBothBins) {
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.4});
  inst.add(1.0, 2.0, RVec{0.4});
  const auto result = simulate(inst, "FirstFit");
  EXPECT_DOUBLE_EQ(result.cost, 2.0);
}

TEST(Simulator, TimelineRecordsOpenCounts) {
  Instance inst(1);
  inst.add(0.0, 4.0, RVec{0.9});
  inst.add(1.0, 3.0, RVec{0.9});
  const auto result =
      simulate(inst, "FirstFit", {.audit = true, .record_timeline = true});
  ASSERT_FALSE(result.timeline.empty());
  // t=0: 1 open; t=1: 2; t=3: 1; t=4: 0.
  std::vector<std::pair<Time, std::size_t>> expected{
      {0.0, 1}, {1.0, 2}, {3.0, 1}, {4.0, 0}};
  EXPECT_EQ(result.timeline, expected);
}

TEST(Simulator, MaxOpenBins) {
  Instance inst(1);
  for (int i = 0; i < 6; ++i) {
    inst.add(static_cast<Time>(i), static_cast<Time>(i) + 2.0, RVec{0.9});
  }
  const auto result = simulate(inst, "FirstFit", {.audit = true});
  EXPECT_EQ(result.max_open_bins, 2u);
  EXPECT_EQ(result.bins_opened, 6u);
}

// ---- Engine-enforced feasibility ---------------------------------------

class EvilUnknownBinPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "EvilUnknown"; }
  BinId select_bin(Time, const Item&, std::span<const BinView>) override {
    return 12345;  // never a valid open bin
  }
};

class EvilOverstuffPolicy final : public Policy {
 public:
  std::string_view name() const noexcept override { return "EvilOverstuff"; }
  BinId select_bin(Time, const Item&,
                   std::span<const BinView> open_bins) override {
    // Always pick the first open bin, whether or not the item fits.
    return open_bins.empty() ? kNoBin : open_bins.front().id;
  }
};

TEST(Simulator, RejectsUnknownBinSelection) {
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.5});
  EvilUnknownBinPolicy evil;
  EXPECT_THROW(simulate(inst, evil), PolicyViolation);
}

TEST(Simulator, RejectsOverfullSelection) {
  Instance inst(1);
  inst.add(0.0, 2.0, RVec{0.7});
  inst.add(0.5, 2.0, RVec{0.7});
  EvilOverstuffPolicy evil;
  EXPECT_THROW(simulate(inst, evil), PolicyViolation);
}

// ---- Non-clairvoyance ---------------------------------------------------

TEST(Simulator, NonClairvoyantPoliciesIgnoreDepartureTimes) {
  // All arrivals happen before any departure, so a non-clairvoyant policy
  // must make identical placements regardless of the departure times.
  Instance a(2);
  Instance b(2);
  for (int i = 0; i < 30; ++i) {
    const RVec size{0.1 + 0.02 * (i % 9), 0.1 + 0.03 * (i % 7)};
    a.add(0.0, 10.0 + i, size);
    b.add(0.0, 500.0 - 7.0 * i, size);  // very different future
  }
  for (const std::string& name : standard_policy_names()) {
    const auto ra = simulate(a, name);
    const auto rb = simulate(b, name);
    EXPECT_EQ(ra.packing.assignment(), rb.packing.assignment()) << name;
  }
}

TEST(Simulator, ClairvoyantPolicyReadsDepartureTimes) {
  // Two open bins with different remaining departures; MinExtensionFit must
  // choose based on the probe's own departure time.
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.6});  // B0 lives long
  inst.add(0.0, 3.0, RVec{0.6});   // B1 departs soon
  inst.add(1.0, 9.5, RVec{0.3});   // long probe: extends B1 a lot, B0 none
  const auto result = simulate(inst, "MinExtensionFit");
  EXPECT_EQ(result.packing.bin_of(2), 0u);

  Instance inst2(1);
  inst2.add(0.0, 10.0, RVec{0.6});
  inst2.add(0.0, 3.0, RVec{0.6});
  inst2.add(1.0, 2.5, RVec{0.3});  // short probe: extends neither; prefers
                                   // the more-loaded... loads tie, so the
                                   // zero-extension set includes both; the
                                   // tie-break keeps B0 (equal loads).
  const auto result2 = simulate(inst2, "MinExtensionFit");
  EXPECT_EQ(result2.packing.bin_of(2), 0u);
}

// ---- Audit sweep over every policy and random workloads ------------------

struct AuditCase {
  const char* policy;
  std::size_t d;
  std::uint64_t seed;
};

class PolicyAuditTest : public ::testing::TestWithParam<AuditCase> {};

TEST_P(PolicyAuditTest, RandomInstancePassesFullAudit) {
  const AuditCase& c = GetParam();
  gen::UniformParams params;
  params.d = c.d;
  params.n = 200;
  params.mu = 8;
  params.span = 60;
  params.bin_size = 20;
  const Instance inst = gen::uniform_instance(params, c.seed);
  // audit=true replays the packing offline and checks every invariant.
  const auto result = simulate(inst, c.policy, {.audit = true});
  EXPECT_GT(result.cost, 0.0);
  EXPECT_GE(result.bins_opened, result.max_open_bins);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyAuditTest,
    ::testing::Values(
        AuditCase{"MoveToFront", 1, 1}, AuditCase{"MoveToFront", 3, 2},
        AuditCase{"FirstFit", 1, 3}, AuditCase{"FirstFit", 3, 4},
        AuditCase{"BestFit", 1, 5}, AuditCase{"BestFit", 3, 6},
        AuditCase{"NextFit", 1, 7}, AuditCase{"NextFit", 3, 8},
        AuditCase{"LastFit", 1, 9}, AuditCase{"LastFit", 3, 10},
        AuditCase{"RandomFit", 1, 11}, AuditCase{"RandomFit", 3, 12},
        AuditCase{"WorstFit", 1, 13}, AuditCase{"WorstFit", 3, 14},
        AuditCase{"BestFit:L1", 2, 15}, AuditCase{"BestFit:L2", 2, 16},
        AuditCase{"WorstFit:L1", 2, 17}, AuditCase{"WorstFit:L2", 2, 18},
        AuditCase{"FirstFit", 12, 21}, AuditCase{"MoveToFront", 12, 22},
        AuditCase{"MinExtensionFit", 2, 19},
        AuditCase{"NoisyMinExtensionFit:0.3", 2, 20}),
    [](const ::testing::TestParamInfo<AuditCase>& info) {
      std::string name = info.param.policy;
      for (char& ch : name) {
        if (ch == ':' || ch == '.') ch = '_';
      }
      return name + "_d" + std::to_string(info.param.d) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace dvbp
