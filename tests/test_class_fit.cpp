// Tests for the class-restricted First Fit policies (HarmonicFit,
// DurationClassFit) and for resource augmentation (SimOptions::bin_capacity).
#include <gtest/gtest.h>

#include "core/policies/class_fit.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "opt/lower_bounds.hpp"

namespace dvbp {
namespace {

// ---- HarmonicFit -----------------------------------------------------------

TEST(HarmonicFit, ClassifiesBySizeReciprocal) {
  HarmonicFitPolicy policy(10);
  auto cls = [&](double s) {
    // Access the classification via behaviour: one item of each size in an
    // otherwise empty system opens a bin of that class.
    Instance inst(1);
    inst.add(0.0, 1.0, RVec{s});
    simulate(inst, policy);
    return 0;  // classification checked in the dedicated tests below
  };
  (void)cls;
  // Direct check through a subclass-visible scenario: items of size 0.6
  // (class 1) and 0.3 (class 3) never share bins even though they fit.
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.6});
  inst.add(0.0, 10.0, RVec{0.3});
  const auto result = simulate(inst, policy);
  EXPECT_EQ(result.bins_opened, 2u);
  EXPECT_NE(result.packing.bin_of(0), result.packing.bin_of(1));
}

TEST(HarmonicFit, SameClassSharesBins) {
  // Two 0.3-items (class 3) share; a third still fits (3 x 0.3 <= 1).
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.3});
  inst.add(0.0, 10.0, RVec{0.3});
  inst.add(0.0, 10.0, RVec{0.3});
  const auto result = simulate(inst, "HarmonicFit");
  EXPECT_EQ(result.bins_opened, 1u);
}

TEST(HarmonicFit, BoundaryLandsInLowerClass) {
  // s = 0.5 must be class 2 (1/(c+1) < s <= 1/c with c = 2), so two such
  // items share a bin.
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.5});
  inst.add(0.0, 10.0, RVec{0.5});
  const auto result = simulate(inst, "HarmonicFit");
  EXPECT_EQ(result.bins_opened, 1u);
}

TEST(HarmonicFit, TinyItemsShareTheFinalClass) {
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.001});
  inst.add(0.0, 10.0, RVec{0.003});
  const auto result = simulate(inst, "HarmonicFit:5");
  EXPECT_EQ(result.bins_opened, 1u);
}

TEST(HarmonicFit, NotAnyFit) {
  // An Any Fit algorithm would put the 0.3-item into the 0.6-bin; Harmonic
  // opens a second bin. This is the defining difference.
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.6});
  inst.add(1.0, 2.0, RVec{0.3});
  EXPECT_EQ(simulate(inst, "FirstFit").bins_opened, 1u);
  EXPECT_EQ(simulate(inst, "HarmonicFit").bins_opened, 2u);
}

TEST(HarmonicFit, ValidatesMaxClass) {
  EXPECT_THROW(HarmonicFitPolicy(0), std::invalid_argument);
  EXPECT_NO_THROW(make_policy("HarmonicFit:3"));
}

TEST(HarmonicFit, AuditCleanOnRandomWorkload) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 300;
  params.mu = 10;
  params.span = 100;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, 3);
  const auto result = simulate(inst, "HarmonicFit", {.audit = true});
  EXPECT_GE(result.cost, lb_height(inst) - 1e-9);
}

// ---- DurationClassFit -------------------------------------------------------

TEST(DurationClassFit, SeparatesDurationScales) {
  // Durations 1.5 (class 0) and 100 (class 6) never share a bin.
  Instance inst(1);
  inst.add(0.0, 1.5, RVec{0.2});
  inst.add(0.0, 100.0, RVec{0.2});
  const auto result = simulate(inst, "DurationClassFit");
  EXPECT_EQ(result.bins_opened, 2u);
}

TEST(DurationClassFit, GroupsSimilarDurations) {
  // 5 and 7 are both in [4, 8) -> class 2: share.
  Instance inst(1);
  inst.add(0.0, 5.0, RVec{0.4});
  inst.add(0.0, 7.0, RVec{0.4});
  const auto result = simulate(inst, "DurationClassFit");
  EXPECT_EQ(result.bins_opened, 1u);
}

TEST(DurationClassFit, IsClairvoyant) {
  EXPECT_TRUE(make_policy("DurationClassFit")->is_clairvoyant());
}

TEST(DurationClassFit, BinClassTrackingCleansUpOnClose) {
  DurationClassFitPolicy policy;
  Instance inst(1);
  inst.add(0.0, 5.0, RVec{0.4});
  inst.add(6.0, 11.0, RVec{0.4});  // same class, but first bin closed
  const auto result = simulate(inst, policy);
  EXPECT_EQ(result.bins_opened, 2u);
  EXPECT_THROW(policy.bin_class(0), std::out_of_range);
}

TEST(DurationClassFit, HelpsOnStragglerWorkload) {
  // Alternating long/short items of size 0.5: interleaved policies strand
  // long items with short ones; duration classes keep them apart.
  Instance inst(1);
  for (int i = 0; i < 40; ++i) {
    inst.add(0.0, 1.0, RVec{0.5});
    inst.add(0.0, 64.0, RVec{0.5});
  }
  const double ff = simulate(inst, "FirstFit").cost;
  const double dc = simulate(inst, "DurationClassFit").cost;
  EXPECT_LE(dc, ff + 1e-9);
}

// ---- Resource augmentation ---------------------------------------------------

TEST(Augmentation, LargerBinsNeverHurtFirstFit) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 300;
  params.mu = 20;
  params.span = 150;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, 9);
  const double base = simulate(inst, "FirstFit").cost;
  const double augmented =
      simulate(inst, "FirstFit", {.bin_capacity = 1.5}).cost;
  EXPECT_LE(augmented, base + 1e-9);
}

TEST(Augmentation, CapacityTwoPacksConflictingPair) {
  Instance inst(1);
  inst.add(0.0, 2.0, RVec{0.7});
  inst.add(0.0, 2.0, RVec{0.7});
  EXPECT_EQ(simulate(inst, "FirstFit").bins_opened, 2u);
  EXPECT_EQ(
      simulate(inst, "FirstFit", {.bin_capacity = 1.5}).bins_opened, 1u);
}

TEST(Augmentation, ValidatesOptions) {
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.5});
  EXPECT_THROW(simulate(inst, "FirstFit", {.bin_capacity = 0.5}),
               std::invalid_argument);
  EXPECT_THROW(
      simulate(inst, "FirstFit", {.audit = true, .bin_capacity = 1.5}),
      std::invalid_argument);
}

TEST(Augmentation, CostStillAboveSpan) {
  // Even infinite capacity cannot beat span(R): one bin must stay open.
  gen::UniformParams params;
  params.d = 1;
  params.n = 100;
  params.mu = 10;
  params.span = 50;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, 17);
  const double cost =
      simulate(inst, "FirstFit", {.bin_capacity = 100.0}).cost;
  EXPECT_GE(cost + 1e-9, inst.span());
  // And with capacity >= n * max size, FirstFit achieves exactly span.
  EXPECT_NEAR(cost, inst.span(), 1e-9);
}

}  // namespace
}  // namespace dvbp
