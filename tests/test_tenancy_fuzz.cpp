// Property fuzz for the tenant credit economy (docs/TENANCY.md):
//
//   1. credit conservation -- after any op soup, credit_sum equals the
//      initial supply plus the alpha-public injections (fp tolerance);
//   2. no tenant ever overdraws -- balances stay >= 0 after every op;
//   3. admission determinism -- the gate's decision sequence depends only
//      on the arrival sequence, so running the identical labeled feed
//      against shard counts K = 1, 2, 4 yields identical admit/deny
//      vectors (the front-end-gating contract);
//   4. save/restore determinism -- snapshotting the arbiter mid-stream
//      and replaying the suffix on the restored copy matches the
//      uninterrupted run exactly.
//
// Failing op soups shrink through the shared ddmin harness
// (tests/ddmin.hpp) before being reported.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "tenancy/arbiter.hpp"

#include "ddmin.hpp"

namespace dvbp {
namespace {

using testing::ddmin;

constexpr double kTol = 1e-6;

// ---------------------------------------------------------------------------
// Op model over the arbiter: admit / release / settle. Any subsequence is
// executable -- releases are capped to the tenant's booked in-flight
// demand so dropping the matching admit cannot underflow, and settle
// times are re-monotonized by the replayer.
struct EconOp {
  enum class Kind : std::uint8_t { kAdmit, kRelease, kSettle };
  Kind kind = Kind::kAdmit;
  TenantId tenant = 0;
  double units = 0.0;
  double dt = 1.0;  // kSettle: epoch length
};

std::string describe(const EconOp& op) {
  std::ostringstream out;
  switch (op.kind) {
    case EconOp::Kind::kAdmit:
      out << "admit t" << op.tenant << " units=" << op.units;
      break;
    case EconOp::Kind::kRelease:
      out << "release t" << op.tenant << " units=" << op.units;
      break;
    case EconOp::Kind::kSettle:
      out << "settle dt=" << op.dt;
      break;
  }
  return out.str();
}

std::string describe(const std::vector<EconOp>& ops) {
  std::string out;
  for (const EconOp& op : ops) out += "  " + describe(op) + "\n";
  return out;
}

std::vector<EconOp> generate_ops(std::uint64_t seed, std::size_t n,
                                 std::uint32_t tenants) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.05, 1.5);
  std::vector<EconOp> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    EconOp op;
    const std::uint32_t roll = static_cast<std::uint32_t>(rng() % 100);
    op.tenant = static_cast<TenantId>(rng() % tenants);
    op.units = unit(rng);
    if (roll < 50) {
      op.kind = EconOp::Kind::kAdmit;
    } else if (roll < 85) {
      op.kind = EconOp::Kind::kRelease;
    } else {
      op.kind = EconOp::Kind::kSettle;
      op.dt = 0.5 + static_cast<double>(rng() % 10);
    }
    ops.push_back(op);
  }
  return ops;
}

tenancy::ArbiterConfig fuzz_config(std::uint32_t tenants, double alpha) {
  tenancy::ArbiterConfig config;
  config.num_tenants = tenants;
  config.capacity_units = 2.0 * tenants;
  config.init_credits = 3.0;
  config.alpha = alpha;
  return config;
}

/// Replays `ops`, checking conservation and no-overdraw after every op.
/// Usage fed to settle is the tenants' in-flight demand times the epoch
/// length (a plausible integral). Returns the first violation, or
/// nullopt.
std::optional<std::string> replay(const std::vector<EconOp>& ops,
                                  const tenancy::ArbiterConfig& config) {
  tenancy::Arbiter arbiter(config);
  const std::uint32_t n = arbiter.num_tenants();
  const double initial = static_cast<double>(n) * config.init_credits;
  Time now = 0.0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const EconOp& op = ops[i];
    switch (op.kind) {
      case EconOp::Kind::kAdmit:
        arbiter.admit(op.tenant, op.units);
        break;
      case EconOp::Kind::kRelease: {
        const double booked = arbiter.inflight(op.tenant);
        arbiter.release(op.tenant, std::min(op.units, booked));
        break;
      }
      case EconOp::Kind::kSettle: {
        now += op.dt;
        std::vector<double> usage(n, 0.0);
        for (std::uint32_t t = 0; t < n; ++t) {
          usage[t] = arbiter.inflight(t) * op.dt;
        }
        arbiter.settle(now, usage);
        break;
      }
    }
    for (std::uint32_t t = 0; t < n; ++t) {
      if (arbiter.credits(t) < -kTol) {
        return "op " + std::to_string(i) + " [" + describe(op) +
               "]: tenant " + std::to_string(t) + " overdrew to " +
               std::to_string(arbiter.credits(t));
      }
    }
    const double expect = initial + arbiter.public_injected();
    if (std::abs(arbiter.credit_sum() - expect) > kTol) {
      return "op " + std::to_string(i) + " [" + describe(op) +
             "]: credit sum " + std::to_string(arbiter.credit_sum()) +
             " != " + std::to_string(expect);
    }
  }
  return std::nullopt;
}

TEST(TenancyFuzz, ConservationAndNoOverdrawUnderOpSoup) {
  for (const std::uint64_t seed : {3u, 17u, 101u, 4242u}) {
    for (const double alpha : {0.0, 0.25}) {
      for (const std::uint32_t tenants : {2u, 5u, 9u}) {
        SCOPED_TRACE("seed=" + std::to_string(seed) + " alpha=" +
                     std::to_string(alpha) + " tenants=" +
                     std::to_string(tenants));
        const tenancy::ArbiterConfig config = fuzz_config(tenants, alpha);
        auto ops = generate_ops(seed, 600, tenants);
        auto failure = replay(ops, config);
        if (failure.has_value()) {
          const auto fails = [&](const std::vector<EconOp>& sub) {
            return replay(sub, config).has_value();
          };
          const auto minimal = ddmin(ops, fails);
          FAIL() << *failure << "\nminimal repro (" << minimal.size()
                 << " ops):\n" << describe(minimal);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Admission determinism across shard counts. The gate runs in the
// front-end, so its decisions are a pure function of the arrival
// sequence; the "shard count" below only changes which backend would
// receive the job, which must not leak into the decision stream.

struct Arrival {
  TenantId tenant = 0;
  double units = 0.0;
  bool departs = false;     // half the jobs release mid-stream
  std::size_t depart_after = 0;
};

std::vector<Arrival> generate_arrivals(std::uint64_t seed, std::size_t n,
                                       std::uint32_t tenants) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.05, 1.2);
  std::vector<Arrival> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Arrival a;
    a.tenant = static_cast<TenantId>(rng() % tenants);
    a.units = unit(rng);
    a.departs = (rng() % 2) == 0;
    a.depart_after = 1 + rng() % 8;
    out.push_back(a);
  }
  return out;
}

/// Simulates the front-end: gate every arrival, round-robin admitted jobs
/// across `shards` backends (affecting nothing but a counter), release
/// departing jobs a few arrivals later. Returns the admit/deny bitmap.
std::vector<bool> decision_stream(const std::vector<Arrival>& arrivals,
                                  std::size_t shards,
                                  std::uint32_t tenants) {
  tenancy::ArbiterConfig config = fuzz_config(tenants, 0.1);
  config.capacity_units = 0.9 * tenants;  // tight: force denials
  tenancy::Arbiter arbiter(config);
  std::vector<bool> decisions;
  decisions.reserve(arrivals.size());
  std::vector<std::pair<std::size_t, const Arrival*>> pending;  // (due, job)
  std::size_t next_shard = 0;
  Time now = 0.0;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    // Releases due at this index (scheduled by earlier admissions).
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->first <= i) {
        arbiter.release(it->second->tenant, it->second->units);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    // Periodic settlement keeps credits moving.
    if (i > 0 && i % 25 == 0) {
      now += 1.0;
      std::vector<double> usage(tenants, 0.0);
      for (std::uint32_t t = 0; t < tenants; ++t) {
        usage[t] = arbiter.inflight(t);
      }
      arbiter.settle(now, usage);
    }
    const Arrival& a = arrivals[i];
    const bool ok = arbiter.admit(a.tenant, a.units);
    decisions.push_back(ok);
    if (ok) {
      next_shard = (next_shard + 1) % shards;  // backend choice: no effect
      if (a.departs) pending.emplace_back(i + a.depart_after, &a);
    }
  }
  return decisions;
}

TEST(TenancyFuzz, AdmissionDecisionsIdenticalForAnyShardCount) {
  for (const std::uint64_t seed : {7u, 23u, 555u}) {
    for (const std::uint32_t tenants : {3u, 8u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " tenants=" +
                   std::to_string(tenants));
      const auto arrivals = generate_arrivals(seed, 400, tenants);
      const std::vector<bool> k1 = decision_stream(arrivals, 1, tenants);
      const std::vector<bool> k2 = decision_stream(arrivals, 2, tenants);
      const std::vector<bool> k4 = decision_stream(arrivals, 4, tenants);
      EXPECT_EQ(k1, k2) << "K=2 diverged from K=1";
      EXPECT_EQ(k1, k4) << "K=4 diverged from K=1";
      // The stream must actually exercise both outcomes to mean anything.
      EXPECT_NE(std::count(k1.begin(), k1.end(), true), 0);
      EXPECT_NE(std::count(k1.begin(), k1.end(), false), 0)
          << "quota never bound; tighten capacity_units";
    }
  }
}

// ---------------------------------------------------------------------------
// Mid-stream snapshot/restore equals the uninterrupted run (the journal
// recovery contract, minus the journal).

TEST(TenancyFuzz, RestoredArbiterReplaysSuffixIdentically) {
  for (const std::uint64_t seed : {13u, 77u}) {
    const std::uint32_t tenants = 6;
    const tenancy::ArbiterConfig config = fuzz_config(tenants, 0.2);
    const auto ops = generate_ops(seed, 500, tenants);
    SCOPED_TRACE("seed=" + std::to_string(seed));

    const auto step = [&](tenancy::Arbiter& arbiter, const EconOp& op,
                          Time& now) {
      switch (op.kind) {
        case EconOp::Kind::kAdmit:
          arbiter.admit(op.tenant, op.units);
          break;
        case EconOp::Kind::kRelease:
          arbiter.release(op.tenant,
                          std::min(op.units, arbiter.inflight(op.tenant)));
          break;
        case EconOp::Kind::kSettle: {
          now += op.dt;
          std::vector<double> usage(tenants, 0.0);
          for (std::uint32_t t = 0; t < tenants; ++t) {
            usage[t] = arbiter.inflight(t) * op.dt;
          }
          arbiter.settle(now, usage);
          break;
        }
      }
    };

    tenancy::Arbiter straight(config);
    Time straight_now = 0.0;
    tenancy::Arbiter crashed(config);
    Time crashed_now = 0.0;
    const std::size_t cut = ops.size() / 2;
    for (std::size_t i = 0; i < cut; ++i) {
      step(straight, ops[i], straight_now);
      step(crashed, ops[i], crashed_now);
    }
    // "Crash": serialize, restore into a fresh arbiter, replay the rest.
    const std::vector<std::uint8_t> bytes = crashed.state_bytes();
    tenancy::Arbiter restored(config);
    serial::Reader in(bytes.data(), bytes.size());
    restored.restore_state(in);
    Time restored_now = crashed_now;
    for (std::size_t i = cut; i < ops.size(); ++i) {
      step(straight, ops[i], straight_now);
      step(restored, ops[i], restored_now);
    }
    for (std::uint32_t t = 0; t < tenants; ++t) {
      EXPECT_NEAR(restored.credits(t), straight.credits(t), kTol)
          << "tenant " << t;
      EXPECT_NEAR(restored.inflight(t), straight.inflight(t), kTol)
          << "tenant " << t;
    }
    EXPECT_EQ(restored.settlements(), straight.settlements());
    EXPECT_NEAR(restored.public_injected(), straight.public_injected(),
                kTol);
  }
}

// ---------------------------------------------------------------------------
// The shrinker on this op model: a seeded predicate with a known core.

TEST(TenancyFuzz, DdminShrinksEconOpStreams) {
  // Fails iff some tenant's in-flight demand reaches 4 admits with no
  // intervening release -- core is exactly 4 admit ops for one tenant.
  const std::uint32_t tenants = 4;
  const auto deep = [&](const std::vector<EconOp>& sub) {
    std::vector<int> streak(tenants, 0);
    for (const EconOp& op : sub) {
      if (op.kind == EconOp::Kind::kAdmit) {
        if (++streak[op.tenant] >= 4) return true;
      } else if (op.kind == EconOp::Kind::kRelease) {
        streak[op.tenant] = 0;
      }
    }
    return false;
  };
  std::vector<EconOp> ops;
  std::uint64_t seed = 1;
  do {
    ops = generate_ops(seed++, 300, tenants);
  } while (!deep(ops));
  const auto minimal = ddmin(ops, deep);
  ASSERT_TRUE(deep(minimal)) << describe(minimal);
  EXPECT_EQ(minimal.size(), 4u) << describe(minimal);
  for (std::size_t i = 0; i < minimal.size(); ++i) {
    auto probe = minimal;
    probe.erase(probe.begin() + static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(deep(probe));
  }
}

}  // namespace
}  // namespace dvbp
