// End-to-end test of the `harness` CLI telemetry flags: runs the real
// binary (path passed as argv[1] by CTest) with --metrics-out/--trace-out,
// then consumes both artifacts -- the metrics snapshot must be valid JSON
// with the expected allocator counters, and the JSONL trace must replay
// into a structurally complete Packing.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/replay.hpp"

namespace dvbp::obs {
namespace {

std::string g_harness_bin;  // set from argv[1] in main() below

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class HarnessCli : public ::testing::Test {
 protected:
  void SetUp() override {
    if (g_harness_bin.empty()) {
      GTEST_SKIP() << "harness binary path not provided";
    }
    metrics_path_ = ::testing::TempDir() + "harness_cli_metrics.json";
    trace_path_ = ::testing::TempDir() + "harness_cli_trace.jsonl";
  }
  void TearDown() override {
    std::remove(metrics_path_.c_str());
    std::remove(trace_path_.c_str());
  }

  int run(const std::string& flags) {
    const std::string cmd = "\"" + g_harness_bin + "\" " + flags;
    return std::system(cmd.c_str());
  }

  std::string metrics_path_;
  std::string trace_path_;
};

TEST_F(HarnessCli, WritesConsumableMetricsAndTrace) {
  constexpr std::size_t kItems = 300;
  const int rc = run("--n=" + std::to_string(kItems) +
                     " --d=2 --mu=8 --policy=FirstFit --quiet" +
                     " --metrics-out=" + metrics_path_ +
                     " --trace-out=" + trace_path_ + " --check-roundtrip");
  ASSERT_EQ(rc, 0);

  // Metrics snapshot: one JSON object with the allocator counters.
  const std::string json = slurp(metrics_path_);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(scan_json_number(json, "dvbp.alloc.arrivals_total"),
            static_cast<double>(kItems));
  EXPECT_EQ(scan_json_number(json, "dvbp.alloc.placements_total"),
            static_cast<double>(kItems));
  const auto bins_opened =
      scan_json_number(json, "dvbp.alloc.bins_opened_total");
  ASSERT_TRUE(bins_opened.has_value());
  EXPECT_GT(*bins_opened, 0.0);
  EXPECT_EQ(scan_json_number(json, "dvbp.alloc.bins_closed_total"),
            *bins_opened);
  EXPECT_EQ(scan_json_number(json, "dvbp.alloc.open_bins"), 0.0);

  // Decision trace: replays into a complete packing.
  const Packing packing = replay_packing_file(trace_path_);
  EXPECT_EQ(packing.num_bins(), static_cast<std::size_t>(*bins_opened));
  ASSERT_EQ(packing.assignment().size(), kItems);
  for (const BinId bin : packing.assignment()) {
    EXPECT_NE(bin, kNoBin);
  }
  std::size_t items_in_bins = 0;
  for (const BinRecord& bin : packing.bins()) {
    EXPECT_GE(bin.closed, bin.opened);
    items_in_bins += bin.items.size();
  }
  EXPECT_EQ(items_in_bins, kItems);
}

TEST_F(HarnessCli, RoundTripHoldsUnderAugmentationAndOtherPolicies) {
  for (const std::string policy : {"MoveToFront", "BestFit"}) {
    const int rc = run("--n=200 --d=2 --mu=6 --capacity=1.3 --policy=" +
                       policy + " --quiet --trace-out=" + trace_path_ +
                       " --check-roundtrip");
    EXPECT_EQ(rc, 0) << policy;
  }
}

TEST_F(HarnessCli, FailsCleanlyOnBadInput) {
  EXPECT_NE(run("--policy=NoSuchPolicy --quiet"), 0);
  EXPECT_NE(run("--quiet --check-roundtrip"), 0);  // needs --trace-out
}

TEST_F(HarnessCli, UnwritableOutputPathsFailFastWithExitCode2) {
  // A typo'd output path must be caught before any simulation runs, with
  // the dedicated usage-error exit code (2) rather than the generic 1.
  // A regular file used as a directory component is unwritable for every
  // uid (unlike permission-based setups, which root walks through).
  const std::string blocker = ::testing::TempDir() + "obs_cli_blocker";
  { std::ofstream(blocker) << "x"; }
  for (const std::string flags :
       {"--quiet --metrics-out=" + blocker + "/m.json",
        "--quiet --trace-out=" + blocker + "/t.jsonl",
        "--quiet --journal-dir=" + blocker + "/x/wal"}) {
    const int rc = run(flags + " 2>/dev/null");
    ASSERT_TRUE(WIFEXITED(rc)) << flags;
    EXPECT_EQ(WEXITSTATUS(rc), 2) << flags;
  }
  std::remove(blocker.c_str());
}

}  // namespace
}  // namespace dvbp::obs

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) dvbp::obs::g_harness_bin = argv[1];
  return RUN_ALL_TESTS();
}
