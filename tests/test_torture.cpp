// Broad randomized torture: many instances across the full parameter
// envelope (all generators, dimensions up to the heap-storage regime,
// extreme mu, degenerate shapes), every registry policy, universal
// invariants checked on each run:
//   span(R) <= cost <= n * max_duration    (trivial envelope)
//   cost >= LB_height                       (Lemma 1)
//   max_open_bins <= bins_opened <= n
//   sum of bin usage == cost; every bin non-empty
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "gen/registry.hpp"
#include "opt/lower_bounds.hpp"
#include "stats/rng.hpp"

namespace dvbp {
namespace {

const char* kPolicies[] = {"MoveToFront",     "FirstFit",
                           "BestFit",         "NextFit",
                           "LastFit",         "RandomFit",
                           "WorstFit",        "BestFit:L2",
                           "HarmonicFit",     "DurationClassFit",
                           "MinExtensionFit", "NoisyMinExtensionFit:0.7"};

void check_universal_invariants(const Instance& inst, const char* policy,
                                std::uint64_t seed) {
  const SimResult r = simulate(inst, policy, {.audit = true}, seed);
  const double span = inst.span();
  EXPECT_GE(r.cost + 1e-9, span) << policy;
  EXPECT_LE(r.cost,
            static_cast<double>(inst.size()) * inst.max_duration() + 1e-9)
      << policy;
  EXPECT_GE(r.cost + 1e-6, lb_height(inst)) << policy;
  EXPECT_LE(r.max_open_bins, r.bins_opened) << policy;
  EXPECT_LE(r.bins_opened, inst.size()) << policy;
  double usage = 0.0;
  for (const BinRecord& bin : r.packing.bins()) {
    EXPECT_FALSE(bin.items.empty()) << policy;
    usage += bin.usage_time();
  }
  EXPECT_NEAR(usage, r.cost, 1e-9) << policy;
}

TEST(Torture, GeneratorGridTimesPolicyGrid) {
  for (const std::string& generator : gen::generator_names()) {
    gen::UniformParams params;
    params.d = 3;
    params.n = 120;
    params.mu = 12;
    params.span = 60;
    params.bin_size = 8;
    const auto generate = gen::make_generator(generator, params, 404);
    const Instance inst = generate(0);
    for (const char* policy : kPolicies) {
      check_universal_invariants(inst, policy, 1);
    }
  }
}

TEST(Torture, HeapDimensionRegime) {
  // d = 12 exceeds RVec's inline storage everywhere in the pipeline.
  gen::UniformParams params;
  params.d = 12;
  params.n = 150;
  params.mu = 6;
  params.span = 50;
  params.bin_size = 6;
  const Instance inst = gen::uniform_instance(params, 505);
  for (const char* policy : kPolicies) {
    check_universal_invariants(inst, policy, 2);
  }
}

TEST(Torture, ExtremeMu) {
  // Duration ratio 1000: long items dominate every bin's lifetime.
  Instance inst(2);
  Xoshiro256pp rng(606);
  for (int i = 0; i < 100; ++i) {
    const Time arrival = static_cast<Time>(rng.uniform_int(0, 50));
    const Time duration =
        (i % 10 == 0) ? 1000.0 : static_cast<Time>(rng.uniform_int(1, 5));
    inst.add(arrival, arrival + duration,
             RVec{rng.uniform(0.05, 0.6), rng.uniform(0.05, 0.6)});
  }
  inst.sort_by_arrival();
  for (const char* policy : kPolicies) {
    check_universal_invariants(inst, policy, 3);
  }
}

TEST(Torture, AllItemsIdentical) {
  Instance inst(1);
  for (int i = 0; i < 60; ++i) inst.add(0.0, 5.0, RVec{0.25});
  for (const char* policy : kPolicies) {
    const SimResult r = simulate(inst, policy, {.audit = true});
    // 60 quarter-items need exactly 15 bins, all policies alike.
    EXPECT_EQ(r.bins_opened, 15u) << policy;
    EXPECT_DOUBLE_EQ(r.cost, 15.0 * 5.0) << policy;
  }
}

TEST(Torture, FullSizeItemsSerialize) {
  // Size exactly 1^d: nothing shares; every policy opens n bins.
  Instance inst(2);
  for (int i = 0; i < 20; ++i) {
    inst.add(static_cast<Time>(i % 4), static_cast<Time>(i % 4) + 2.0,
             RVec{1.0, 1.0});
  }
  inst.sort_by_arrival();
  for (const char* policy : kPolicies) {
    const SimResult r = simulate(inst, policy, {.audit = true});
    EXPECT_EQ(r.bins_opened, 20u) << policy;
  }
}

TEST(Torture, ZeroSizeItemsAllShare) {
  // Zero demand: an Any Fit policy must never open a second bin while one
  // is open (everything fits everywhere).
  Instance inst(3);
  for (int i = 0; i < 40; ++i) {
    inst.add(static_cast<Time>(i % 10), static_cast<Time>(i % 10) + 3.0,
             RVec(3, 0.0));
  }
  inst.sort_by_arrival();
  for (const char* policy : {"MoveToFront", "FirstFit", "BestFit"}) {
    const SimResult r = simulate(inst, policy, {.audit = true});
    EXPECT_EQ(r.max_open_bins, 1u) << policy;
    EXPECT_DOUBLE_EQ(r.cost, inst.span()) << policy;
  }
}

TEST(Torture, SequentialNonOverlappingChain) {
  // Strictly sequential items: every policy pays exactly the span and the
  // bin count equals n (bins close before the next arrival).
  Instance inst(1);
  for (int i = 0; i < 25; ++i) {
    inst.add(2.0 * i, 2.0 * i + 1.0, RVec{0.8});
  }
  for (const char* policy : kPolicies) {
    const SimResult r = simulate(inst, policy, {.audit = true});
    EXPECT_DOUBLE_EQ(r.cost, 25.0) << policy;
    EXPECT_EQ(r.bins_opened, 25u) << policy;
    EXPECT_EQ(r.max_open_bins, 1u) << policy;
  }
}

}  // namespace
}  // namespace dvbp
