// The packing/dispatcher state hashes moved to src/core/packing_hash.hpp
// so the network layer's Snapshot/Drain RPCs can report them over the wire
// (src/net/server.cpp). This forwarder keeps the historical test include
// path; the hash definitions themselves are pinned by the golden values in
// golden_packings.inc and must not drift.
#pragma once

#include "core/packing_hash.hpp"
