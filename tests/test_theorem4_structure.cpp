// Structural validation of the Theorem 4 (Next Fit) analysis. The proof
// splits each bin's usage period I_i into the current period P_i (from
// opening until the bin is released) and the released period Q_i, and
// establishes:
//
//   sum ell(P_i) <= span(R)              (current periods are disjoint)
//   ell(Q_i) <= mu (max item duration)   (no packs after release)
//   at each release: ||s(R'_i) + s(r_i)||_inf > 1   (the release reason)
//   sum ell(Q_i) <= 2 * mu * d * OPT     (via the above + Lemma 1(ii))
//
// All reconstructed from the instrumented release log and checked against
// the exact offline optimum.
#include <gtest/gtest.h>

#include <map>

#include "core/policies/next_fit.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "opt/offline_opt.hpp"

namespace dvbp {
namespace {

class Theorem4StructureTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(Theorem4StructureTest, DecompositionHoldsAgainstExactOpt) {
  const auto [d, seed] = GetParam();
  gen::UniformParams params;
  params.d = d;
  params.n = 35;
  params.mu = 6;
  params.span = 25;
  params.bin_size = 6;
  const Instance inst = gen::uniform_instance(params, seed);

  NextFitPolicy policy;
  const SimResult sim = simulate(inst, policy, {.audit = true});

  std::map<BinId, NextFitPolicy::Release> release_of;
  for (const auto& rel : policy.release_log()) {
    EXPECT_EQ(release_of.count(rel.bin), 0u) << "bin released twice";
    release_of[rel.bin] = rel;
  }

  const double max_dur = inst.max_duration();
  const double mu_ratio = inst.mu();
  const double dd = static_cast<double>(d);

  double p_total = 0.0;
  double q_total = 0.0;
  for (const BinRecord& bin : sim.packing.bins()) {
    auto it = release_of.find(bin.id);
    if (it == release_of.end()) {
      // Never released: current for its entire life.
      p_total += bin.usage_time();
      continue;
    }
    const auto& rel = it->second;
    ASSERT_GE(rel.time, bin.opened - 1e-12);
    ASSERT_LE(rel.time, bin.closed + 1e-12);
    p_total += rel.time - bin.opened;
    const double q_len = bin.closed - rel.time;
    q_total += q_len;

    // ell(Q_i) <= mu: the bin receives nothing after its release.
    EXPECT_LE(q_len, max_dur + 1e-9) << "bin " << bin.id;

    // Release reason: the trigger item plus the bin's live load overflowed
    // some dimension.
    RVec load(inst.dim());
    for (ItemId r : bin.items) {
      if (inst[r].active_at(rel.time)) load += inst[r].size;
    }
    load += inst[rel.trigger].size;
    EXPECT_GT(load.linf(), 1.0 - 1e-9)
        << "bin " << bin.id << " released without overflow reason";

    // The trigger is the first item of the *next* opened bin.
    ASSERT_LT(bin.id + 1, sim.packing.num_bins());
    EXPECT_EQ(sim.packing.bin_of(rel.trigger), bin.id + 1);
  }

  // Current periods are pairwise disjoint, so their total is at most the
  // span (strictly less when a current bin closes during an activity gap).
  EXPECT_LE(p_total, inst.span() + 1e-9);
  EXPECT_NEAR(p_total + q_total, sim.cost, 1e-9);

  const auto opt = offline_opt(inst);
  ASSERT_TRUE(opt.exact);
  // Theorem 4's two pieces and the assembled bound.
  EXPECT_LE(q_total, 2.0 * mu_ratio * dd * opt.cost + 1e-6);
  EXPECT_LE(sim.cost, (2.0 * mu_ratio * dd + 1.0) * opt.cost + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Random, Theorem4StructureTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                        8)));

TEST(Theorem4Structure, HandComputedReleases) {
  Instance inst(1);
  inst.add(0.0, 5.0, RVec{0.7});  // B0 current
  inst.add(1.0, 6.0, RVec{0.7});  // releases B0 at t=1 -> B1
  inst.add(2.0, 4.0, RVec{0.2});  // fits B1 (0.9)
  inst.add(3.0, 6.0, RVec{0.5});  // releases B1 at t=3 -> B2
  NextFitPolicy policy;
  const SimResult sim = simulate(inst, policy, {.audit = true});
  ASSERT_EQ(sim.bins_opened, 3u);
  ASSERT_EQ(policy.release_log().size(), 2u);
  EXPECT_EQ(policy.release_log()[0], (NextFitPolicy::Release{0u, 1.0, 1u}));
  EXPECT_EQ(policy.release_log()[1], (NextFitPolicy::Release{1u, 3.0, 3u}));
  // Q(B0) = [1,5): length 4; Q(B1) = [3,6): length 3.
  EXPECT_DOUBLE_EQ(sim.packing.bins()[0].usage_time(), 5.0);
  EXPECT_DOUBLE_EQ(sim.packing.bins()[1].usage_time(), 5.0);
}

}  // namespace
}  // namespace dvbp
