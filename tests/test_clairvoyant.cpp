// Tests for the clairvoyant extensions (Sec. 8 future work): exact
// duration knowledge should beat non-clairvoyant policies on alignment-
// sensitive workloads, and prediction noise should degrade gracefully.
#include <gtest/gtest.h>

#include "core/policies/clairvoyant.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "harness/sweep.hpp"

namespace dvbp {
namespace {

TEST(MinExtensionFit, PrefersBinThatNeedsNoExtension) {
  Instance inst(1);
  inst.add(0.0, 100.0, RVec{0.6});  // B0: lives long
  inst.add(0.0, 2.0, RVec{0.6});    // B1: departs soon (0.6+0.6 > 1)
  inst.add(1.0, 50.0, RVec{0.3});   // fits both; extending B1 costs ~48
  const auto result = simulate(inst, "MinExtensionFit", {.audit = true});
  EXPECT_EQ(result.packing.bin_of(2), 0u);
}

TEST(MinExtensionFit, TieBreaksTowardMostLoaded) {
  Instance inst(1);
  inst.add(0.0, 100.0, RVec{0.55});  // B0 load 0.55
  inst.add(0.0, 100.0, RVec{0.6});   // B1 load 0.6 (doesn't fit B0)
  inst.add(1.0, 50.0, RVec{0.2});    // zero extension on both
  const auto result = simulate(inst, "MinExtensionFit");
  EXPECT_EQ(result.packing.bin_of(2), 1u);
}

TEST(MinExtensionFit, IsAnyFit) {
  // Never opens a bin when one fits.
  Instance inst(1);
  inst.add(0.0, 5.0, RVec{0.6});
  inst.add(1.0, 2.0, RVec{0.4});
  const auto result = simulate(inst, "MinExtensionFit");
  EXPECT_EQ(result.bins_opened, 1u);
}

TEST(NoisyMinExtensionFit, SigmaZeroMatchesClairvoyant) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 300;
  params.mu = 20;
  params.span = 200;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, 77);
  const auto clair = simulate(inst, "MinExtensionFit");
  const auto noisy0 = simulate(inst, "NoisyMinExtensionFit:0");
  EXPECT_EQ(clair.packing.assignment(), noisy0.packing.assignment());
}

TEST(NoisyMinExtensionFit, DeterministicPerSeed) {
  gen::UniformParams params;
  params.d = 1;
  params.n = 200;
  params.mu = 10;
  params.span = 100;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, 3);
  const auto a = simulate(inst, "NoisyMinExtensionFit:0.5", {}, 9);
  const auto b = simulate(inst, "NoisyMinExtensionFit:0.5", {}, 9);
  EXPECT_EQ(a.packing.assignment(), b.packing.assignment());
}

TEST(Clairvoyance, BeatsNonClairvoyantOnAlignmentWorkload) {
  // Long-vs-short mix where alignment matters: average over trials of the
  // usage cost; exact duration knowledge must help vs First Fit.
  gen::UniformParams params;
  params.d = 1;
  params.n = 500;
  params.mu = 50;
  params.span = 300;
  params.bin_size = 10;
  const auto generate = gen::make_generator("uniform", params, 123);

  harness::SweepConfig cfg;
  cfg.trials = 10;
  const auto cells = harness::run_policy_sweep(
      generate, {"FirstFit", "MinExtensionFit"}, cfg);
  EXPECT_LT(cells[1].ratio.mean(), cells[0].ratio.mean());
}

TEST(Clairvoyance, NoiseDegradesMonotonically) {
  gen::UniformParams params;
  params.d = 1;
  params.n = 400;
  params.mu = 50;
  params.span = 300;
  params.bin_size = 10;
  const auto generate = gen::make_generator("uniform", params, 321);

  harness::SweepConfig cfg;
  cfg.trials = 12;
  const auto cells = harness::run_policy_sweep(
      generate,
      {"NoisyMinExtensionFit:0", "NoisyMinExtensionFit:2.0"}, cfg);
  // Heavy noise (sigma = 2: duration mis-estimated by e^{2N(0,1)}) should
  // not beat exact knowledge.
  EXPECT_LE(cells[0].ratio.mean(), cells[1].ratio.mean() + 0.01);
}

TEST(Clairvoyance, PolicyFlagsAreCorrect) {
  EXPECT_TRUE(MinExtensionFitPolicy().is_clairvoyant());
  EXPECT_TRUE(NoisyMinExtensionFitPolicy(0.1).is_clairvoyant());
  NoisyMinExtensionFitPolicy noisy(0.25);
  EXPECT_EQ(noisy.sigma(), 0.25);
  EXPECT_NE(std::string(noisy.name()).find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace dvbp
