// The trace subsystem's contract suite (src/trace/, docs/TRACES.md):
//
//  * Round-trip: instance -> binary trace -> materialize() is bit-exact
//    (raw IEEE-754 columns, no text), tenants included.
//  * Streaming: TraceCursor emits exactly build_event_stream() order, and
//    replay_trace() matches simulate() bin for bin -- cost, bin count and
//    the full packing hash -- for all ten registered policies.
//  * Hostile input: EVERY truncation length and EVERY single-byte
//    corruption of a valid file is rejected with TraceError at open; the
//    reader never walks unvalidated bytes.
//  * CSV ingestion: header detection, comment/blank skipping, tenant
//    mapping, skip-and-count vs strict.
//  * Reduction: the emitted OPT interval is sound --
//    streaming lower bound <= OPT(original) <= offline_opt(reduced) --
//    and the streaming Lemma-1 sweep equals opt/lower_bounds.hpp exactly.
//  * IndexList (core/pool.hpp): the pooled list under MoveToFront's MRU
//    order keeps std::list semantics through the free-list recycling.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/policies/registry.hpp"
#include "core/pool.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "opt/lower_bounds.hpp"
#include "opt/offline_opt.hpp"
#include "packing_hash.hpp"
#include "trace/convert.hpp"
#include "trace/format.hpp"
#include "trace/reader.hpp"
#include "trace/reduce.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"

namespace dvbp::trace {
namespace {

constexpr std::uint64_t kPolicySeed = 0xD1CEu;

const char* const kPolicies[] = {
    "MoveToFront", "FirstFit",        "BestFit",     "NextFit",
    "LastFit",     "RandomFit",       "WorstFit",    "MinExtensionFit",
    "HarmonicFit", "DurationClassFit"};

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

Instance small_instance(std::size_t n, std::size_t d,
                        std::uint64_t seed = 0xBEEF) {
  gen::UniformParams params;
  params.n = n;
  params.d = d;
  params.mu = 8;
  params.span = 50;
  params.bin_size = 6;
  return gen::uniform_instance(params, seed);
}

std::vector<std::uint8_t> slurp_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void dump_bytes(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class TraceFile : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

// ---------------------------------------------------------------------------
// Round-trip

TEST_F(TraceFile, InstanceRoundTripIsBitExact) {
  Instance inst = small_instance(200, 3);
  // Tenant labels survive the round trip too.
  for (ItemId i = 0; i < inst.size(); ++i) {
    inst.set_tenant(i, static_cast<TenantId>(i % 5));
  }
  const std::string path = track(temp_path("trace_roundtrip.trc"));
  TraceWriter::write_instance(inst, path);

  TraceReader reader(path);
  ASSERT_EQ(reader.size(), inst.size());
  ASSERT_EQ(reader.dim(), inst.dim());
  EXPECT_TRUE(reader.has_tenants());

  const Instance back = reader.materialize();
  ASSERT_EQ(back.size(), inst.size());
  ASSERT_EQ(back.dim(), inst.dim());
  for (ItemId i = 0; i < inst.size(); ++i) {
    const Item& a = inst[i];
    const Item& b = back[i];
    EXPECT_EQ(a.id, b.id);
    // Bit-exact: compare the stored doubles with ==, not a tolerance.
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.departure, b.departure);
    EXPECT_EQ(a.tenant, b.tenant);
    for (std::size_t j = 0; j < inst.dim(); ++j) {
      EXPECT_EQ(a.size[j], b.size[j]);
    }
    // The zero-copy accessors agree with the materialized item.
    EXPECT_EQ(reader.arrival(i), a.arrival);
    EXPECT_EQ(reader.departure(i), a.departure);
    EXPECT_EQ(reader.tenant(i), a.tenant);
    for (std::size_t j = 0; j < inst.dim(); ++j) {
      EXPECT_EQ(reader.demand(i, j), a.size[j]);
    }
  }
}

TEST_F(TraceFile, WriterSortsByArrival) {
  TraceWriter writer(1);
  RVec s(1);
  s[0] = 0.5;
  writer.add(5.0, 9.0, s);
  writer.add(1.0, 2.0, s);
  writer.add(3.0, 7.0, s);
  const std::string path = track(temp_path("trace_sorted.trc"));
  writer.write(path);
  TraceReader reader(path);
  ASSERT_EQ(reader.size(), 3u);
  EXPECT_EQ(reader.arrival(0), 1.0);
  EXPECT_EQ(reader.arrival(1), 3.0);
  EXPECT_EQ(reader.arrival(2), 5.0);
  EXPECT_EQ(reader.first_arrival(), 1.0);
  EXPECT_EQ(reader.last_departure(), 9.0);
}

TEST_F(TraceFile, EmptyTraceRoundTrips) {
  TraceWriter writer(2);
  const std::string path = track(temp_path("trace_empty.trc"));
  writer.write(path);
  TraceReader reader(path);
  EXPECT_TRUE(reader.empty());
  EXPECT_EQ(reader.dim(), 2u);
  TraceCursor cursor(reader);
  TraceEvent ev;
  EXPECT_FALSE(cursor.next(ev));
  EXPECT_EQ(reader.materialize().size(), 0u);
}

TEST_F(TraceFile, WriterRejectsBadItems) {
  TraceWriter writer(2);
  RVec ok(2);
  ok[0] = ok[1] = 0.5;
  EXPECT_THROW(writer.add(1.0, 1.0, ok), TraceError);   // empty interval
  EXPECT_THROW(writer.add(-1.0, 1.0, ok), TraceError);  // negative arrival
  RVec wrong_dim(3);
  EXPECT_THROW(writer.add(0.0, 1.0, wrong_dim), TraceError);
  RVec too_big(2);
  too_big[0] = 1.5;
  EXPECT_THROW(writer.add(0.0, 1.0, too_big), TraceError);
  writer.add(0.0, 1.0, ok);  // still usable after rejections
  EXPECT_EQ(writer.items(), 1u);
}

// ---------------------------------------------------------------------------
// Streaming: cursor order and replay parity

TEST_F(TraceFile, CursorEmitsBuildEventStreamOrder) {
  const Instance inst = small_instance(300, 2);
  const std::string path = track(temp_path("trace_cursor.trc"));
  TraceWriter::write_instance(inst, path);
  TraceReader reader(path);

  const std::vector<Event> expected = build_event_stream(inst);
  TraceCursor cursor(reader);
  TraceEvent ev;
  std::size_t k = 0;
  while (cursor.next(ev)) {
    ASSERT_LT(k, expected.size());
    EXPECT_EQ(ev.time, expected[k].time);
    EXPECT_EQ(ev.kind, expected[k].kind);
    EXPECT_EQ(ev.item, expected[k].item);
    ++k;
  }
  EXPECT_EQ(k, expected.size());
  EXPECT_EQ(cursor.events_emitted(), expected.size());

  // reset() rewinds to an identical stream.
  cursor.reset();
  std::size_t again = 0;
  while (cursor.next(ev)) ++again;
  EXPECT_EQ(again, expected.size());
}

TEST_F(TraceFile, ReplayMatchesSimulateForAllPolicies) {
  for (const std::size_t d : {1u, 2u, 5u}) {
    const Instance inst = small_instance(250, d, 0xFACE + d);
    const std::string path =
        track(temp_path("trace_parity_d" + std::to_string(d) + ".trc"));
    TraceWriter::write_instance(inst, path);
    TraceReader reader(path);

    for (const char* policy_name : kPolicies) {
      const SimResult batch = simulate(inst, policy_name, {}, kPolicySeed);

      const PolicyPtr policy = make_policy(policy_name, kPolicySeed);
      Packing packing;
      ReplayOptions opts;
      opts.packing_out = &packing;
      const ReplayResult replay = replay_trace(reader, *policy, opts);

      SCOPED_TRACE(std::string(policy_name) + " d=" + std::to_string(d));
      EXPECT_EQ(replay.items, inst.size());
      EXPECT_EQ(replay.events, 2 * inst.size());
      EXPECT_EQ(replay.bins_opened, batch.bins_opened);
      EXPECT_EQ(replay.max_open_bins, batch.max_open_bins);
      // Bit-exact cost and the full order-sensitive packing hash: the
      // streamed replay made the same decision at every single event.
      EXPECT_EQ(replay.cost, batch.cost);
      EXPECT_EQ(packing_hash(packing), packing_hash(batch.packing));
    }
  }
}

// ---------------------------------------------------------------------------
// Hostile input: every truncation, every byte flip

TEST_F(TraceFile, EveryTruncationIsRejected) {
  Instance inst = small_instance(8, 2);
  for (ItemId i = 0; i < inst.size(); ++i) inst.set_tenant(i, 1);
  const std::string path = track(temp_path("trace_fuzz_base.trc"));
  TraceWriter::write_instance(inst, path);
  const std::vector<std::uint8_t> bytes = slurp_bytes(path);
  ASSERT_GT(bytes.size(), 0u);

  const std::string mutant = track(temp_path("trace_fuzz_trunc.trc"));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    dump_bytes(mutant,
               std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + len));
    EXPECT_THROW(TraceReader r(mutant), TraceError)
        << "prefix of " << len << " bytes accepted";
  }
}

TEST_F(TraceFile, EveryByteFlipIsRejected) {
  Instance inst = small_instance(8, 2);
  for (ItemId i = 0; i < inst.size(); ++i) inst.set_tenant(i, 1);
  const std::string path = track(temp_path("trace_fuzz_base2.trc"));
  TraceWriter::write_instance(inst, path);
  const std::vector<std::uint8_t> bytes = slurp_bytes(path);

  const std::string mutant = track(temp_path("trace_fuzz_flip.trc"));
  std::vector<std::uint8_t> corrupted = bytes;
  for (std::size_t off = 0; off < bytes.size(); ++off) {
    corrupted[off] = bytes[off] ^ 0xFFu;
    dump_bytes(mutant, corrupted);
    // Any single flipped byte is inside the CRC's coverage (or is the CRC
    // itself), so open must fail -- possibly earlier, on a layout check.
    EXPECT_THROW(TraceReader r(mutant), TraceError)
        << "flip at offset " << off << " accepted";
    corrupted[off] = bytes[off];
  }
}

TEST_F(TraceFile, TrailingGarbageIsRejected) {
  const Instance inst = small_instance(8, 2);
  const std::string path = track(temp_path("trace_fuzz_tail.trc"));
  TraceWriter::write_instance(inst, path);
  std::vector<std::uint8_t> bytes = slurp_bytes(path);
  bytes.push_back(0);
  const std::string mutant = track(temp_path("trace_fuzz_tail2.trc"));
  dump_bytes(mutant, bytes);
  EXPECT_THROW(TraceReader r(mutant), TraceError);
}

TEST_F(TraceFile, MissingFileIsRejected) {
  EXPECT_THROW(TraceReader r(temp_path("no_such_trace.trc")), TraceError);
}

// ---------------------------------------------------------------------------
// CSV conversion

TEST_F(TraceFile, ConvertCsvSkipsHeaderCommentsAndBlankLines) {
  std::istringstream csv(
      "vmid,start,end,core,mem\n"
      "# synthetic sample\n"
      "\n"
      "vm-a,0.0,10.0,0.25,0.5\n"
      "vm-b,1.0,4.0,0.5,0.125\n"
      "vm-a,2.0,8.0,0.75,0.25\n");
  const std::string path = track(temp_path("trace_csv.trc"));
  ConvertOptions opts;
  opts.tenants = true;
  const ConvertStats stats = convert_csv(csv, path, opts);
  EXPECT_EQ(stats.rows_read, 3u);
  EXPECT_EQ(stats.items_written, 3u);
  EXPECT_EQ(stats.rows_skipped, 0u);
  EXPECT_EQ(stats.dim, 2u);
  EXPECT_EQ(stats.tenants, 2u);  // vm-a, vm-b

  TraceReader reader(path);
  ASSERT_EQ(reader.size(), 3u);
  EXPECT_EQ(reader.dim(), 2u);
  ASSERT_TRUE(reader.has_tenants());
  // Rows are sorted by arrival; vmids map to dense labels in
  // first-appearance order: vm-a -> 0, vm-b -> 1.
  EXPECT_EQ(reader.arrival(0), 0.0);
  EXPECT_EQ(reader.tenant(0), 0u);
  EXPECT_EQ(reader.tenant(1), 1u);
  EXPECT_EQ(reader.tenant(2), 0u);
  EXPECT_EQ(reader.demand(0, 0), 0.25);
  EXPECT_EQ(reader.demand(0, 1), 0.5);
  EXPECT_EQ(reader.demand(2, 1), 0.25);
}

TEST_F(TraceFile, ConvertCsvSkipsBadRowsUnlessStrict) {
  const std::string bad =
      "vm-a,0,10,0.5\n"
      "vm-b,5,2,0.5\n"    // end <= start
      "vm-c,1,3,1.75\n"   // demand above capacity
      "vm-d,2,4\n"        // missing demand column
      "vm-e,3,6,0.25\n";
  {
    std::istringstream csv(bad);
    const std::string path = track(temp_path("trace_csv_skip.trc"));
    const ConvertStats stats = convert_csv(csv, path);
    EXPECT_EQ(stats.rows_read, 5u);
    EXPECT_EQ(stats.items_written, 2u);
    EXPECT_EQ(stats.rows_skipped, 3u);
    TraceReader reader(path);
    EXPECT_EQ(reader.size(), 2u);
    EXPECT_FALSE(reader.has_tenants());
  }
  {
    std::istringstream csv(bad);
    ConvertOptions opts;
    opts.strict = true;
    const std::string path = track(temp_path("trace_csv_strict.trc"));
    EXPECT_THROW(convert_csv(csv, path, opts), TraceError);
  }
}

TEST_F(TraceFile, ConvertedCsvReplaysLikeTheEquivalentInstance) {
  // The converter's output must be the same workload the core engine sees:
  // build the equivalent Instance by hand and compare FirstFit costs.
  std::istringstream csv(
      "a,0,10,0.6\n"
      "b,1,5,0.6\n"
      "c,2,8,0.3\n"
      "d,6,9,0.8\n");
  const std::string path = track(temp_path("trace_csv_replay.trc"));
  convert_csv(csv, path);

  Instance inst(1);
  const double rows[4][3] = {
      {0, 10, 0.6}, {1, 5, 0.6}, {2, 8, 0.3}, {6, 9, 0.8}};
  for (const auto& row : rows) {
    RVec s(1);
    s[0] = row[2];
    inst.add(row[0], row[1], s);
  }
  inst.sort_by_arrival();

  TraceReader reader(path);
  const PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  const ReplayResult replay = replay_trace(reader, *policy);
  const SimResult batch = simulate(inst, "FirstFit", {}, kPolicySeed);
  EXPECT_EQ(replay.cost, batch.cost);
  EXPECT_EQ(replay.bins_opened, batch.bins_opened);
}

TEST_F(TraceFile, CommittedSampleRoundTripsForAllPolicies) {
  // The committed sample pair (data/sample_azure_1k.{csv,trc}) is pinned:
  // re-converting the CSV reproduces the committed binary byte for byte,
  // and streaming the binary through every registered policy matches the
  // materialized-Instance simulation bit for bit.
  std::ifstream csv(DVBP_SAMPLE_CSV);
  ASSERT_TRUE(csv.is_open()) << DVBP_SAMPLE_CSV;
  const std::string reconverted = track(temp_path("sample_reconvert.trc"));
  ConvertOptions copts;
  copts.tenants = true;
  convert_csv(csv, reconverted, copts);
  EXPECT_EQ(slurp_bytes(reconverted), slurp_bytes(DVBP_SAMPLE_TRC));

  TraceReader reader(DVBP_SAMPLE_TRC);
  const Instance inst = reader.materialize();
  for (const char* policy_name : kPolicies) {
    SCOPED_TRACE(policy_name);
    const SimResult batch = simulate(inst, policy_name, {}, kPolicySeed);
    const PolicyPtr policy = make_policy(policy_name, kPolicySeed);
    Packing packing;
    ReplayOptions opts;
    opts.packing_out = &packing;
    const ReplayResult replay = replay_trace(reader, *policy, opts);
    EXPECT_EQ(replay.cost, batch.cost);
    EXPECT_EQ(replay.bins_opened, batch.bins_opened);
    EXPECT_EQ(packing_hash(packing), packing_hash(batch.packing));
  }
}

// ---------------------------------------------------------------------------
// Reduction: sound OPT interval

TEST_F(TraceFile, StreamingBoundsMatchBatchLowerBounds) {
  const Instance inst = small_instance(400, 2);
  const std::string path = track(temp_path("trace_bounds.trc"));
  TraceWriter::write_instance(inst, path);
  TraceReader reader(path);
  const StreamBounds stream = streaming_lower_bounds(reader);
  const LowerBounds batch = lower_bounds(inst);
  // Identical arithmetic over identical bits: exact equality, no tolerance.
  EXPECT_EQ(stream.height, batch.height);
  EXPECT_EQ(stream.utilization, batch.utilization);
  EXPECT_EQ(stream.span, batch.span);
  EXPECT_EQ(stream.best(), batch.best());
}

TEST_F(TraceFile, ReduceBracketsTheTrueOptimum) {
  // Small enough that offline_opt is exact on BOTH the original and the
  // reduced instance, so the soundness chain is checked against the real
  // OPT, not an estimate:  lb(original) <= OPT(original) <= OPT(reduced).
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Instance inst = small_instance(14, 2, 0xB0B + seed);
    const std::string path =
        track(temp_path("trace_reduce_" + std::to_string(seed) + ".trc"));
    TraceWriter::write_instance(inst, path);
    TraceReader reader(path);

    ReduceOptions opts;
    opts.size_grid = 4;
    opts.time_cells = 8;
    const std::string out =
        track(temp_path("trace_reduced_" + std::to_string(seed) + ".trc"));
    const ReduceResult res = reduce_trace(reader, out, opts);
    EXPECT_EQ(res.original_items, inst.size());
    EXPECT_LE(res.reduced_items, res.original_items);
    EXPECT_EQ(res.dim, 2u);

    const OfflineOptResult original_opt = offline_opt(inst);
    ASSERT_TRUE(original_opt.exact);
    TraceReader reduced(out);
    const OfflineOptResult reduced_opt = offline_opt(reduced.materialize());
    ASSERT_TRUE(reduced_opt.exact);

    SCOPED_TRACE("seed " + std::to_string(seed));
    // Lower end: the streaming Lemma-1 bound on the ORIGINAL trace.
    EXPECT_LE(res.original_bounds.best(), original_opt.cost + 1e-9);
    // Upper end: the reduction only ever makes the instance harder.
    EXPECT_LE(original_opt.cost, reduced_opt.cost + 1e-9);
  }
}

TEST_F(TraceFile, ReduceMergesIdenticalItems) {
  // 40 copies of the same quarter-bin item on the same interval collapse
  // into ceil(40 / m) stacks with m = floor(g / units) members each.
  TraceWriter writer(1);
  RVec s(1);
  s[0] = 0.25;
  for (int i = 0; i < 40; ++i) writer.add(0.0, 10.0, s);
  const std::string path = track(temp_path("trace_merge.trc"));
  writer.write(path);
  TraceReader reader(path);

  ReduceOptions opts;
  opts.size_grid = 8;  // 0.25 -> 2 units; m = floor(8/2) = 4 per stack
  opts.time_cells = 4;
  const std::string out = track(temp_path("trace_merged.trc"));
  const ReduceResult res = reduce_trace(reader, out, opts);
  EXPECT_EQ(res.original_items, 40u);
  EXPECT_EQ(res.groups, 1u);
  EXPECT_EQ(res.reduced_items, 10u);  // 40 / 4

  TraceReader reduced(out);
  ASSERT_EQ(reduced.size(), 10u);
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    // Stacked demand is exactly 4 * 2/8 = 1.0 -- still packable.
    EXPECT_EQ(reduced.demand(i, 0), 1.0);
    // Widened outward: the stack's interval covers every member's.
    EXPECT_LE(reduced.arrival(i), 0.0);
    EXPECT_GE(reduced.departure(i), 10.0);
  }
}

TEST_F(TraceFile, ReduceMakesHundredThousandEventsExactlySolvable) {
  // The headline use case (ISSUE/ROADMAP): a 100k-event trace whose raw
  // form no exact solver could touch is reduced to an instance vbp_exact
  // solves, yielding a true OPT interval for the original. The workload is
  // cloud-shaped: tens of thousands of near-identical small VMs at modest
  // concurrent load -- exactly where stacking pays (each group of
  // identical (size, interval) items collapses to ~count/g stacks).
  constexpr std::size_t kItems = 50'000;  // 100k events
  TraceWriter writer(2);
  RVec s(2);
  std::uint64_t rng = 0x5EED5EED;
  auto next_u01 = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(rng >> 11) * 0x1p-53;
  };
  for (std::size_t i = 0; i < kItems; ++i) {
    // Poisson-ish arrivals at rate 50/unit over span 1000, lifetime ~2
    // units: ~100 concurrently active 1/16-bin items = ~7 bins of load.
    const Time arrival = next_u01() * 1000.0;
    const Time departure = arrival + 0.5 + 3.0 * next_u01();
    s[0] = 0.05 + 0.01 * next_u01();  // rounds up to 1/16 at grid 16
    s[1] = 0.04 + 0.02 * next_u01();
    writer.add(arrival, departure, s);
  }
  const std::string path = track(temp_path("trace_100k.trc"));
  writer.write(path);
  TraceReader reader(path);
  ASSERT_EQ(2 * reader.size(), 100'000u);

  ReduceOptions opts;
  opts.size_grid = 16;
  opts.time_cells = 4;
  const std::string out = track(temp_path("trace_100k_reduced.trc"));
  const ReduceResult res = reduce_trace(reader, out, opts);
  // The reduction must shrink by (nearly) the full stacking factor
  // m = floor(g / units) = 16...
  EXPECT_LT(res.reduced_items, kItems / 10);

  // ...down to something the exact solver finishes, giving a real OPT
  // bracket for the 100k-event original.
  TraceReader reduced(out);
  const OfflineOptResult opt = offline_opt(reduced.materialize());
  EXPECT_TRUE(opt.exact);
  EXPECT_GT(opt.cost, 0.0);
  EXPECT_LE(res.original_bounds.best(), opt.cost + 1e-9);
}

TEST_F(TraceFile, ReduceRejectsZeroGrids) {
  const Instance inst = small_instance(4, 1);
  const std::string path = track(temp_path("trace_badgrid.trc"));
  TraceWriter::write_instance(inst, path);
  TraceReader reader(path);
  ReduceOptions opts;
  opts.size_grid = 0;
  EXPECT_THROW(reduce_trace(reader, track(temp_path("x.trc")), opts),
               TraceError);
  opts.size_grid = 8;
  opts.time_cells = 0;
  EXPECT_THROW(reduce_trace(reader, track(temp_path("y.trc")), opts),
               TraceError);
}

// ---------------------------------------------------------------------------
// IndexList (core/pool.hpp): the pooled MRU list under MoveToFront

TEST(IndexListTest, PushFrontEraseMoveToFront) {
  IndexList list;
  EXPECT_TRUE(list.empty());
  const std::uint32_t a = list.push_front(10);
  const std::uint32_t b = list.push_front(20);
  const std::uint32_t c = list.push_front(30);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.front(), 30u);

  auto order = [&list] {
    std::vector<BinId> out;
    for (std::uint32_t n = list.head(); n != IndexList::kNil;
         n = list.next(n)) {
      out.push_back(list.value(n));
    }
    return out;
  };
  EXPECT_EQ(order(), (std::vector<BinId>{30, 20, 10}));

  list.move_to_front(a);
  EXPECT_EQ(order(), (std::vector<BinId>{10, 30, 20}));
  list.move_to_front(a);  // already front: no-op
  EXPECT_EQ(order(), (std::vector<BinId>{10, 30, 20}));

  list.erase(c);  // middle
  EXPECT_EQ(order(), (std::vector<BinId>{10, 20}));
  list.erase(a);  // head
  EXPECT_EQ(order(), (std::vector<BinId>{20}));
  list.erase(b);  // last
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
}

TEST(IndexListTest, PushBackBuildsFifoOrder) {
  IndexList list;
  list.push_back(1);
  list.push_back(2);
  const std::uint32_t tail = list.push_back(3);
  EXPECT_EQ(list.front(), 1u);
  list.move_to_front(tail);
  EXPECT_EQ(list.front(), 3u);
  EXPECT_EQ(list.size(), 3u);
}

TEST(IndexListTest, FreeListRecyclesNodes) {
  IndexList list;
  const std::uint32_t a = list.push_front(1);
  list.erase(a);
  // The freed slab slot is handed back for the next insertion.
  const std::uint32_t b = list.push_front(2);
  EXPECT_EQ(b, a);
  EXPECT_EQ(list.front(), 2u);

  list.push_front(3);
  list.clear();
  EXPECT_TRUE(list.empty());
  // clear() threads every node onto the free list; churn after clear must
  // not grow the slab.
  for (int round = 0; round < 100; ++round) {
    const std::uint32_t x = list.push_front(static_cast<BinId>(round));
    const std::uint32_t y = list.push_back(static_cast<BinId>(round + 1));
    EXPECT_LT(x, 2u);
    EXPECT_LT(y, 2u);
    list.erase(x);
    list.erase(y);
  }
}

}  // namespace
}  // namespace dvbp::trace
