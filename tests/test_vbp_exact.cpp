// Tests for the exact vector bin packing solver and the FFD heuristic:
// known-optimal hand instances, agreement with brute-force reasoning, FFD
// always >= exact, and exact >= ceil(Linf of total).
#include "opt/vbp_exact.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "opt/ffd.hpp"
#include "stats/rng.hpp"

namespace dvbp {
namespace {

TEST(Ffd, EmptyInput) {
  EXPECT_EQ(ffd_bin_count({}), 0u);
}

TEST(Ffd, SingleItem) {
  EXPECT_EQ(ffd_bin_count({RVec{0.5}}), 1u);
}

TEST(Ffd, PairsThatFit) {
  EXPECT_EQ(ffd_bin_count({RVec{0.5}, RVec{0.5}, RVec{0.5}, RVec{0.5}}), 2u);
}

TEST(Ffd, RejectsOversizedItem) {
  EXPECT_THROW(ffd_bin_count({RVec{1.5}}), std::invalid_argument);
}

TEST(Ffd, AssignmentIsConsistent) {
  std::vector<RVec> sizes{RVec{0.6}, RVec{0.4}, RVec{0.7}, RVec{0.3}};
  std::vector<std::size_t> assignment;
  const std::size_t bins = ffd_pack(sizes, &assignment);
  ASSERT_EQ(assignment.size(), sizes.size());
  std::vector<RVec> loads(bins, RVec(1));
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ASSERT_LT(assignment[i], bins);
    loads[assignment[i]] += sizes[i];
  }
  for (const RVec& load : loads) {
    EXPECT_TRUE(load.fits_in_capacity(1.0));
    EXPECT_GT(load.l1(), 0.0);  // no empty bins
  }
}

TEST(Ffd, ClassicWorstCaseUsesMoreThanOpt) {
  // FFD is suboptimal on this 1-D pattern: items
  // {0.51, 0.51, 0.26, 0.26, 0.26, 0.24, 0.24} -> OPT = 3 bins
  // (0.51+0.26+0.... check via exact solver below); FFD places both 0.51s
  // alone with 0.26s fragmenting. We only assert FFD >= exact here; the
  // exact count is checked in the VbpExact tests.
  const std::vector<RVec> sizes{RVec{0.51}, RVec{0.51}, RVec{0.26},
                                RVec{0.26}, RVec{0.26}, RVec{0.24},
                                RVec{0.24}};
  EXPECT_GE(ffd_bin_count(sizes), vbp_min_bins(sizes).bins);
}

TEST(VbpExact, EmptyInput) {
  const VbpResult r = vbp_min_bins({});
  EXPECT_EQ(r.bins, 0u);
  EXPECT_TRUE(r.exact);
}

TEST(VbpExact, SingleAndFull) {
  EXPECT_EQ(vbp_min_bins({RVec{1.0}}).bins, 1u);
  EXPECT_EQ(vbp_min_bins({RVec{1.0}, RVec{1.0}}).bins, 2u);
}

TEST(VbpExact, PerfectPairing) {
  // Six items of 0.5 pack into 3 bins.
  std::vector<RVec> sizes(6, RVec{0.5});
  EXPECT_EQ(vbp_min_bins(sizes).bins, 3u);
}

TEST(VbpExact, BeatsGreedyWhenPairingMatters) {
  // {0.6, 0.6, 0.4, 0.4}: optimal pairs (0.6+0.4) twice -> 2 bins.
  const std::vector<RVec> sizes{RVec{0.6}, RVec{0.6}, RVec{0.4}, RVec{0.4}};
  EXPECT_EQ(vbp_min_bins(sizes).bins, 2u);
}

TEST(VbpExact, TwoDimensionalComplementarity) {
  // (0.9, 0.1) and (0.1, 0.9) pair perfectly: 2 of each -> 2 bins.
  const std::vector<RVec> sizes{RVec{0.9, 0.1}, RVec{0.1, 0.9},
                                RVec{0.9, 0.1}, RVec{0.1, 0.9}};
  EXPECT_EQ(vbp_min_bins(sizes).bins, 2u);
}

TEST(VbpExact, MultiDimForcesMoreBinsThanAnySingleDim) {
  // Each pair conflicts in some dimension: (0.6,0.1), (0.6,0.1), (0.1,0.6),
  // (0.1,0.6), (0.5,0.5). Per-dimension ceil = ceil(1.9) = 2, but the best
  // packing needs 3 bins -- multidimensionality is strictly harder.
  const std::vector<RVec> sizes{RVec{0.6, 0.1}, RVec{0.6, 0.1},
                                RVec{0.1, 0.6}, RVec{0.1, 0.6},
                                RVec{0.5, 0.5}};
  const VbpResult r = vbp_min_bins(sizes);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.bins, 3u);
}

TEST(VbpExact, RejectsOversizedItem) {
  EXPECT_THROW(vbp_min_bins({RVec{0.5, 1.2}}), std::invalid_argument);
}

TEST(VbpExact, NodeLimitReturnsInexactUpperBound) {
  // A deliberately hard instance with a 1-node budget: result must fall
  // back to the FFD count and flag inexactness (unless FFD was already
  // provably optimal, in which case exact stays true).
  Xoshiro256pp rng(5);
  std::vector<RVec> sizes;
  for (int i = 0; i < 16; ++i) {
    sizes.push_back(RVec{0.21 + 0.05 * rng.uniform(), 0.3 * rng.uniform()});
  }
  VbpOptions opts;
  opts.node_limit = 1;
  const VbpResult limited = vbp_min_bins(sizes, opts);
  const VbpResult full = vbp_min_bins(sizes);
  EXPECT_TRUE(full.exact);
  EXPECT_GE(limited.bins, full.bins);
}

// Property sweep: exact <= FFD, exact >= ceil(max-dim total), and exact is
// invariant under permutations of the input.
class VbpRandomTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(VbpRandomTest, BoundsAndPermutationInvariance) {
  const auto [d, seed] = GetParam();
  Xoshiro256pp rng(seed * 977 + d);
  std::vector<RVec> sizes;
  const int n = 3 + static_cast<int>(rng.uniform_int(0, 9));
  for (int i = 0; i < n; ++i) {
    RVec s(d);
    for (std::size_t j = 0; j < d; ++j) s[j] = rng.uniform(0.05, 0.95);
    sizes.push_back(std::move(s));
  }
  const VbpResult exact = vbp_min_bins(sizes);
  ASSERT_TRUE(exact.exact);
  EXPECT_LE(exact.bins, ffd_bin_count(sizes));

  RVec total(d);
  for (const RVec& s : sizes) total += s;
  EXPECT_GE(static_cast<double>(exact.bins),
            std::ceil(total.linf() - 1e-9) - 1e-9);

  // Shuffle and re-solve.
  for (int i = n - 1; i > 0; --i) {
    std::swap(sizes[static_cast<std::size_t>(i)],
              sizes[static_cast<std::size_t>(rng.uniform_int(0, i))]);
  }
  EXPECT_EQ(vbp_min_bins(sizes).bins, exact.bins);
}

INSTANTIATE_TEST_SUITE_P(
    Random, VbpRandomTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6)));

// ---- Exhaustive differential oracle -----------------------------------
// For tiny inputs, enumerate every set partition (restricted growth
// strings) and take the best feasible one; the branch-and-bound solver
// must agree exactly. This independently validates all of its pruning.

std::size_t brute_force_min_bins(const std::vector<RVec>& sizes) {
  const std::size_t n = sizes.size();
  if (n == 0) return 0;
  std::vector<std::size_t> block(n, 0);  // restricted growth string
  std::size_t best = n;
  for (;;) {
    const std::size_t groups =
        1 + *std::max_element(block.begin(), block.end());
    if (groups < best) {
      std::vector<RVec> loads(groups, RVec(sizes.front().dim()));
      bool feasible = true;
      for (std::size_t i = 0; i < n && feasible; ++i) {
        loads[block[i]] += sizes[i];
        feasible = loads[block[i]].fits_in_capacity(1.0);
      }
      if (feasible) best = groups;
    }
    // Next restricted growth string: block[i] <= 1 + max(block[0..i-1]).
    std::size_t i = n;
    while (i-- > 1) {
      std::size_t prefix_max = 0;
      for (std::size_t j = 0; j < i; ++j) {
        prefix_max = std::max(prefix_max, block[j]);
      }
      if (block[i] <= prefix_max) {
        ++block[i];
        std::fill(block.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  block.end(), 0);
        break;
      }
      if (i == 1) return best;  // exhausted
      block[i] = 0;
    }
    if (n == 1) return best;
  }
}

class VbpOracleTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(VbpOracleTest, BranchAndBoundMatchesExhaustiveEnumeration) {
  const auto [d, seed] = GetParam();
  Xoshiro256pp rng(seed * 131 + d);
  for (int rep = 0; rep < 8; ++rep) {
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 5));  // <= 7
    std::vector<RVec> sizes;
    for (int i = 0; i < n; ++i) {
      RVec s(d);
      for (std::size_t j = 0; j < d; ++j) s[j] = rng.uniform(0.05, 1.0);
      sizes.push_back(std::move(s));
    }
    const VbpResult solver = vbp_min_bins(sizes);
    ASSERT_TRUE(solver.exact);
    EXPECT_EQ(solver.bins, brute_force_min_bins(sizes));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, VbpOracleTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4)));

// 1-D sanity oracle: with all sizes > 1/2, every item needs its own bin.
TEST(VbpExact, AllBigItemsNeedOwnBins) {
  std::vector<RVec> sizes;
  for (int i = 0; i < 7; ++i) sizes.push_back(RVec{0.51 + 0.01 * i});
  EXPECT_EQ(vbp_min_bins(sizes).bins, sizes.size());
}

}  // namespace
}  // namespace dvbp
