// Structural validation of the Theorem 2 analysis. The proof decomposes
// each Move To Front bin's usage period into leading intervals P_{i,j}
// (bin at the front of the MRU list) and non-leading intervals Q_{i,j},
// and establishes:
//
//   Claim 1:  sum ell(P_{i,j}) = span(R)            (exact equality)
//   ell(Q_{i,j}) <= mu (max item duration)          (per interval)
//   Claim 2:  sum ||s(r_{i,j})||_inf * ell(Q_{i,j}) <= mu * d * OPT
//   Claim 3:  sum ||s(R_{i,j})||_inf * ell(Q_{i,j}) <= (mu+1) * d * OPT
//
// where r_{i,j} is the arriving item whose placement elsewhere ended bin
// i's leadership, and R_{i,j} the items active in bin i at that moment.
//
// The decomposition (including zero-length leaderships, which the
// policy's collapsed leader history intentionally drops) is reconstructed
// by replaying the MRU-list dynamics from the finished packing: the front
// changes exactly on item receives (to the receiving bin) and on closes
// of the front bin (to the next list entry). Every inequality is then
// checked against the *exact* offline optimum.
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "core/event.hpp"
#include "core/policies/move_to_front.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "opt/offline_opt.hpp"

namespace dvbp {
namespace {

/// One uncollapsed front-of-list transition.
struct FrontChange {
  Time time = 0.0;
  BinId leader = kNoBin;
  ItemId cause = kNoItem;  ///< arriving item, or kNoItem for a close handoff
};

/// Replays the MRU dynamics implied by a Move To Front packing.
std::vector<FrontChange> replay_front(const Instance& inst,
                                      const Packing& packing) {
  std::vector<FrontChange> out;
  std::list<BinId> mru;
  std::vector<std::size_t> active(packing.num_bins(), 0);
  auto front = [&]() -> BinId { return mru.empty() ? kNoBin : mru.front(); };

  for (const Event& ev : build_event_stream(inst)) {
    const BinId bin = packing.bin_of(ev.item);
    const BinId before = front();
    if (ev.kind == EventKind::kArrival) {
      ++active[bin];
      auto it = std::find(mru.begin(), mru.end(), bin);
      if (it != mru.end()) mru.erase(it);
      mru.push_front(bin);
      if (front() != before) out.push_back({ev.time, front(), ev.item});
    } else {
      --active[bin];
      if (active[bin] == 0) {
        mru.remove(bin);
        if (front() != before) out.push_back({ev.time, front(), kNoItem});
      }
    }
  }
  return out;
}

struct QInterval {
  BinId bin = kNoBin;
  Time start = 0.0;
  Time end = 0.0;
  ItemId cause = kNoItem;
  Time length() const { return end - start; }
};

struct Decomposition {
  double leading_total = 0.0;  ///< includes zero-length leaderships (0 cost)
  std::vector<QInterval> q_intervals;
};

Decomposition decompose(const Instance& inst, const Packing& packing) {
  const std::vector<FrontChange> timeline = replay_front(inst, packing);
  Decomposition out;

  // Leading measure: consecutive timeline entries bound each leadership.
  for (std::size_t i = 0; i + 1 < timeline.size(); ++i) {
    if (timeline[i].leader != kNoBin) {
      out.leading_total += timeline[i + 1].time - timeline[i].time;
    }
  }

  // Per-bin Q intervals: from each loss of leadership (with its cause)
  // until the next gain of leadership or the bin's close.
  for (const BinRecord& bin : packing.bins()) {
    bool is_leader = false;
    bool q_open = false;
    QInterval q;
    for (const FrontChange& ev : timeline) {
      if (ev.time < bin.opened || ev.time > bin.closed) {
        // Outside the bin's life; still track state transitions at edges.
      }
      if (ev.leader == bin.id) {
        if (q_open && ev.time > q.start + kTimeEps) {
          q.end = ev.time;
          out.q_intervals.push_back(q);
        }
        q_open = false;
        is_leader = true;
      } else if (is_leader) {
        is_leader = false;
        if (ev.time < bin.closed - kTimeEps) {
          q = {bin.id, ev.time, bin.closed, ev.cause};
          q_open = true;
        }
      }
    }
    if (q_open) out.q_intervals.push_back(q);  // ran until the bin closed
  }
  return out;
}

class Theorem2StructureTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(Theorem2StructureTest, ClaimsHoldAgainstExactOpt) {
  const auto [d, seed] = GetParam();
  gen::UniformParams params;
  params.d = d;
  params.n = 35;  // small enough for exact OPT
  params.mu = 6;
  params.span = 25;
  params.bin_size = 6;
  const Instance inst = gen::uniform_instance(params, seed);

  MoveToFrontPolicy policy(/*record_leader_history=*/true);
  const SimResult sim = simulate(inst, policy, {.audit = true});
  const Decomposition dec = decompose(inst, sim.packing);

  // Cross-check: the replayed leading measure equals the one implied by
  // the policy's own (collapsed) leader history.
  double history_leading = 0.0;
  const auto& h = policy.leader_history();
  for (std::size_t i = 0; i + 1 < h.size(); ++i) {
    if (h[i].leader != kNoBin) history_leading += h[i + 1].time - h[i].time;
  }
  EXPECT_NEAR(dec.leading_total, history_leading, 1e-9);

  // Claim 1: leading intervals partition the span.
  EXPECT_NEAR(dec.leading_total, inst.span(), 1e-9);

  // Decomposition completeness: P + Q == total cost.
  double q_total = 0.0;
  for (const QInterval& q : dec.q_intervals) q_total += q.length();
  EXPECT_NEAR(dec.leading_total + q_total, sim.cost, 1e-9);

  const double mu_ratio = inst.mu();
  const double max_dur = inst.max_duration();
  const double dd = static_cast<double>(d);

  // Per-interval bound: no item is packed into a bin during its
  // non-leading interval, so ell(Q) <= max item duration.
  for (const QInterval& q : dec.q_intervals) {
    EXPECT_LE(q.length(), max_dur + 1e-9)
        << "bin " << q.bin << " Q=[" << q.start << "," << q.end << ")";
  }

  const auto opt = offline_opt(inst);
  ASSERT_TRUE(opt.exact);

  // Claim 2: sum ||s(r_ij)|| * ell(Q_ij) <= mu * d * OPT. Each Q interval
  // is started by a distinct displacing arrival.
  double claim2 = 0.0;
  std::map<ItemId, int> cause_uses;
  for (const QInterval& q : dec.q_intervals) {
    ASSERT_NE(q.cause, kNoItem)
        << "non-leading interval without a displacing item";
    EXPECT_EQ(++cause_uses[q.cause], 1) << "cause reused";
    claim2 += inst[q.cause].size.linf() * q.length();
  }
  EXPECT_LE(claim2, mu_ratio * dd * opt.cost + 1e-6);

  // Claim 3: sum ||s(R_ij)|| * ell(Q_ij) <= (mu+1) * d * OPT, with R_ij the
  // items of bin i active when Q_ij starts.
  double claim3 = 0.0;
  for (const QInterval& q : dec.q_intervals) {
    RVec load(inst.dim());
    const BinRecord& bin = sim.packing.bins()[q.bin];
    for (ItemId r : bin.items) {
      if (inst[r].active_at(q.start)) load += inst[r].size;
    }
    EXPECT_GT(load.linf(), 0.0);  // a non-leading open bin is loaded
    claim3 += load.linf() * q.length();
  }
  EXPECT_LE(claim3, (mu_ratio + 1.0) * dd * opt.cost + 1e-6);

  // Assembled Theorem 2: cost <= span + claim2-sum + claim3-sum
  //                           <= ((2mu+1)d + 1) * OPT.
  EXPECT_LE(sim.cost, inst.span() + claim2 + claim3 + 1e-6);
  EXPECT_LE(sim.cost,
            ((2.0 * mu_ratio + 1.0) * dd + 1.0) * opt.cost + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Random, Theorem2StructureTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4, 5, 6, 7,
                                                        8)));

// A crafted scenario where the decomposition is fully known in closed form.
TEST(Theorem2Structure, HandComputedDecomposition) {
  Instance inst(1);
  inst.add(0.0, 9.0, RVec{0.6});  // B0, leads [0,2)
  inst.add(2.0, 7.0, RVec{0.9});  // B1 (0.6+0.9 > 1), leads [2,5)
  inst.add(5.0, 9.0, RVec{0.3});  // fits B0 (0.9) not B1 (1.2) -> B0 leads
  MoveToFrontPolicy policy(true);
  const SimResult sim = simulate(inst, policy, {.audit = true});
  const Decomposition dec = decompose(inst, sim.packing);

  // Leading: B0 [0,2), B1 [2,5), B0 [5,9). Q(B0) = [2,5) caused by item 1;
  // Q(B1) = [5,7) caused by item 2.
  EXPECT_NEAR(dec.leading_total, 9.0, 1e-12);
  ASSERT_EQ(dec.q_intervals.size(), 2u);
  EXPECT_EQ(dec.q_intervals[0].bin, 0u);
  EXPECT_NEAR(dec.q_intervals[0].length(), 3.0, 1e-12);
  EXPECT_EQ(dec.q_intervals[0].cause, 1u);
  EXPECT_EQ(dec.q_intervals[1].bin, 1u);
  EXPECT_NEAR(dec.q_intervals[1].length(), 2.0, 1e-12);
  EXPECT_EQ(dec.q_intervals[1].cause, 2u);
}

// Zero-length leaderships (same-instant displacement chains) must split
// non-leading intervals: bin B receives an item at time t and loses the
// front at the same instant -- its Q restarts at t.
TEST(Theorem2Structure, SameInstantDisplacementSplitsQ) {
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.8});  // B0
  inst.add(1.0, 10.0, RVec{0.8});  // B1 (front)
  // At t=2, two simultaneous arrivals: the first goes to B0 (0.8+0.15
  // doesn't fit B1's 0.8? 1.6 -- right, only B0 fits after B1? both 0.8;
  // 0.15 fits both; MRU front B1 takes it first).
  inst.add(2.0, 10.0, RVec{0.15});  // -> B1 (front)
  inst.add(2.0, 10.0, RVec{0.15});  // B1 now 0.95; fits (1.10 > 1? no:
                                    // 0.95+0.15=1.10) -> B0, B0 front
  const SimResult sim = simulate(inst, "MoveToFront", {.audit = true});
  ASSERT_EQ(sim.packing.bin_of(2), 1u);
  ASSERT_EQ(sim.packing.bin_of(3), 0u);
  const Decomposition dec = decompose(inst, sim.packing);
  // B1 leads [1,2); receives item 2 at t=2 (still front, zero-length since
  // item 3 immediately moves B0 ahead)... B1's post-2 non-leading interval
  // must start exactly at 2 with cause item 3.
  bool found = false;
  for (const QInterval& q : dec.q_intervals) {
    if (q.bin == 1u && q.start == 2.0) {
      EXPECT_EQ(q.cause, 3u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dvbp
