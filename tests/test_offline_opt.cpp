// Tests for the exact offline optimum (eq. (2) integration): hand-computed
// optima, dominance over the Lemma 1 bounds, and the fundamental sandwich
// LB <= OPT <= cost(any online policy).
#include "opt/offline_opt.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "opt/lower_bounds.hpp"

namespace dvbp {
namespace {

TEST(OfflineOpt, EmptyInstance) {
  Instance inst(1);
  const auto r = offline_opt(inst);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.segments, 0u);
}

TEST(OfflineOpt, SingleItem) {
  Instance inst(1);
  inst.add(1.0, 5.0, RVec{0.7});
  const auto r = offline_opt(inst);
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
  EXPECT_EQ(r.segments, 1u);
  EXPECT_EQ(r.max_active, 1u);
}

TEST(OfflineOpt, RepackingBeatsAnyOnlinePolicy) {
  // Two 0.6-items overlap on [1,2): online algorithms that placed them
  // apart pay 2 bins over the overlap; OPT does too (0.6+0.6 > 1), so here
  // they agree -- but with a third 0.4-item OPT can repack optimally.
  Instance inst(1);
  inst.add(0.0, 2.0, RVec{0.6});
  inst.add(1.0, 3.0, RVec{0.6});
  const auto r = offline_opt(inst);
  // [0,1): 1 bin; [1,2): 2 bins; [2,3): 1 bin -> 4.
  EXPECT_DOUBLE_EQ(r.cost, 4.0);
}

TEST(OfflineOpt, GapSplitsIntoSubproblems) {
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.5});
  inst.add(10.0, 12.0, RVec{0.5});
  const auto r = offline_opt(inst);
  EXPECT_DOUBLE_EQ(r.cost, 3.0);  // idle [1,10) costs nothing
}

TEST(OfflineOpt, MultiDimensionalSegments) {
  Instance inst(2);
  inst.add(0.0, 2.0, RVec{0.9, 0.1});
  inst.add(0.0, 2.0, RVec{0.1, 0.9});  // complementary: one bin
  inst.add(1.0, 2.0, RVec{0.5, 0.5});  // forces a second bin on [1,2)
  const auto r = offline_opt(inst);
  EXPECT_DOUBLE_EQ(r.cost, 1.0 + 2.0);
}

TEST(OfflineOpt, MemoizationReusesRepeatedActiveSets) {
  // An item blinks on and off around a persistent one; distinct segments
  // share active sets only when ids match, but the same set {0} recurs.
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.5});   // persistent
  inst.add(2.0, 3.0, RVec{0.4});
  inst.add(5.0, 6.0, RVec{0.4});
  const auto r = offline_opt(inst);
  EXPECT_DOUBLE_EQ(r.cost, 10.0);
  EXPECT_EQ(r.segments, 5u);
  // {0} appears three times but is solved once; {0,1} and {0,2} once each.
  EXPECT_EQ(r.vbp_calls, 3u);
}

TEST(OfflineOpt, FfdVariantUpperBoundsExact) {
  Instance inst(1);
  inst.add(0.0, 2.0, RVec{0.6});
  inst.add(0.0, 2.0, RVec{0.6});
  inst.add(0.0, 2.0, RVec{0.4});
  inst.add(0.0, 2.0, RVec{0.4});
  EXPECT_GE(offline_ffd_cost(inst) + 1e-12, offline_opt(inst).cost);
}

// The fundamental sandwich on random instances:
//   max(Lemma 1 bounds) <= OPT <= offline FFD <= ... and
//   OPT <= cost(policy) for every online policy.
class OfflineOptSandwichTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(OfflineOptSandwichTest, BoundsSandwichOpt) {
  const auto [d, seed] = GetParam();
  gen::UniformParams params;
  params.d = d;
  params.n = 30;       // small: exact OPT must stay tractable
  params.mu = 5;
  params.span = 25;
  params.bin_size = 10;
  const Instance inst = gen::uniform_instance(params, seed);

  const auto opt = offline_opt(inst);
  ASSERT_TRUE(opt.exact);

  const LowerBounds lbs = lower_bounds(inst);
  EXPECT_GE(opt.cost + 1e-9, lbs.height);
  EXPECT_GE(opt.cost + 1e-9, lbs.utilization);
  EXPECT_GE(opt.cost + 1e-9, lbs.span);

  EXPECT_GE(offline_ffd_cost(inst) + 1e-9, opt.cost);

  for (const char* policy :
       {"MoveToFront", "FirstFit", "NextFit", "BestFit", "WorstFit"}) {
    EXPECT_GE(simulate(inst, policy).cost + 1e-9, opt.cost) << policy;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, OfflineOptSandwichTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 3),
                       ::testing::Values<std::uint64_t>(11, 22, 33, 44, 55,
                                                        66, 77, 88)));

}  // namespace
}  // namespace dvbp
