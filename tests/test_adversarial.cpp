// Tests for the Section 6 adversarial constructions: simulation must
// reproduce the exact bin-opening pattern each proof claims, the predicted
// OPT upper bounds must be certified by the exact/FFD offline solvers, and
// the resulting cost ratios must approach the theoretical lower bounds.
#include "gen/adversarial.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/simulator.hpp"
#include "opt/lower_bounds.hpp"
#include "opt/offline_opt.hpp"

namespace dvbp {
namespace {

using gen::AdversarialInstance;

// ---- Theorem 5: Any Fit lower bound (mu+1)d ------------------------------

class AnyFitLbTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 const char*>> {};

TEST_P(AnyFitLbTest, ForcesDkBinsOnEveryAnyFitPolicy) {
  const auto [k, d, policy] = GetParam();
  const double mu = 10.0;
  const AdversarialInstance adv = gen::anyfit_lower_bound(k, d, mu);
  ASSERT_FALSE(adv.instance.validate().has_value());

  const auto result = simulate(adv.instance, policy, {.audit = true});
  // The proof's pattern: exactly dk bins, each pinned open by an R1 item.
  EXPECT_EQ(result.bins_opened, adv.predicted_bins) << policy;
  EXPECT_GE(result.cost + 1e-6, adv.predicted_online_cost) << policy;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnyFitLbTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 5),
                       ::testing::Values<std::size_t>(1, 2, 4),
                       ::testing::Values("FirstFit", "BestFit", "WorstFit",
                                         "MoveToFront", "LastFit",
                                         "RandomFit")));

TEST(AnyFitLb, OptUpperBoundIsAchievable) {
  // Certify predicted_opt_upper with the FFD offline packer (an upper bound
  // on OPT that must itself respect the prediction's slack).
  const AdversarialInstance adv = gen::anyfit_lower_bound(3, 2, 5.0);
  const double opt_ub = offline_ffd_cost(adv.instance);
  // OPT (and hence its FFD upper bound on these structured instances)
  // stays within the construction's claimed budget.
  EXPECT_LE(opt_ub, adv.predicted_opt_upper * 1.05);
}

TEST(AnyFitLb, RatioApproachesTheorem5Bound) {
  const double mu = 10.0;
  const std::size_t d = 2;
  double prev_ratio = 0.0;
  for (std::size_t k : {2, 8, 32}) {
    const AdversarialInstance adv = gen::anyfit_lower_bound(k, d, mu);
    const double cost = simulate(adv.instance, "FirstFit").cost;
    const double opt_ub = offline_ffd_cost(adv.instance);
    const double ratio = cost / opt_ub;
    EXPECT_GT(ratio, prev_ratio);  // monotone toward the bound
    prev_ratio = ratio;
  }
  // At k=32 the ratio should be most of the way to (mu+1)d = 22.
  EXPECT_GT(prev_ratio, 0.6 * bounds::any_fit_lower(mu, d));
}

TEST(AnyFitLb, ValidatesParameters) {
  EXPECT_THROW(gen::anyfit_lower_bound(0, 1, 5.0), std::invalid_argument);
  EXPECT_THROW(gen::anyfit_lower_bound(2, 0, 5.0), std::invalid_argument);
  EXPECT_THROW(gen::anyfit_lower_bound(2, 1, 0.5), std::invalid_argument);
  EXPECT_THROW(gen::anyfit_lower_bound(2, 1, 5.0, 1.5),
               std::invalid_argument);
}

// ---- Theorem 6: Next Fit lower bound 2*mu*d -------------------------------

class NextFitLbTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(NextFitLbTest, ForcesPredictedBinCount) {
  const auto [k, d] = GetParam();
  const double mu = 8.0;
  const AdversarialInstance adv = gen::nextfit_lower_bound(k, d, mu);
  ASSERT_FALSE(adv.instance.validate().has_value());
  const auto result = simulate(adv.instance, "NextFit", {.audit = true});
  EXPECT_EQ(result.bins_opened, adv.predicted_bins);
  EXPECT_GE(result.cost + 1e-6, adv.predicted_online_cost);
}

INSTANTIATE_TEST_SUITE_P(Grid, NextFitLbTest,
                         ::testing::Combine(::testing::Values<std::size_t>(
                                                2, 4, 8),
                                            ::testing::Values<std::size_t>(
                                                1, 2, 3)));

TEST(NextFitLb, RatioApproachesTheorem6Bound) {
  const double mu = 6.0;
  const std::size_t d = 2;
  const AdversarialInstance adv = gen::nextfit_lower_bound(48, d, mu);
  const double cost = simulate(adv.instance, "NextFit").cost;
  const double opt_ub = offline_ffd_cost(adv.instance);
  // Finite-k prediction: (1+(k-1)d)mu / (mu + k/2); at k=48 this is ~19.
  EXPECT_GE(cost / opt_ub, adv.predicted_ratio() * 0.99);
  EXPECT_GT(cost / opt_ub, 0.6 * bounds::next_fit_lower(mu, d));
}

TEST(NextFitLb, OtherPoliciesEscapeTheTrap) {
  // First Fit keeps all long items consolidated far better than Next Fit
  // on the Thm 6 instance.
  const AdversarialInstance adv = gen::nextfit_lower_bound(8, 2, 8.0);
  const double nf = simulate(adv.instance, "NextFit").cost;
  const double ff = simulate(adv.instance, "FirstFit").cost;
  EXPECT_LT(ff * 2.0, nf);
}

TEST(NextFitLb, ValidatesParameters) {
  EXPECT_THROW(gen::nextfit_lower_bound(3, 1, 5.0), std::invalid_argument);
  EXPECT_THROW(gen::nextfit_lower_bound(0, 1, 5.0), std::invalid_argument);
  EXPECT_THROW(gen::nextfit_lower_bound(2, 0, 5.0), std::invalid_argument);
}

// ---- Theorem 8: Move To Front 1-D lower bound 2*mu ------------------------

TEST(MtfLb, Opens2nBinsPairwise) {
  const AdversarialInstance adv = gen::mtf_lower_bound(5, 7.0);
  ASSERT_FALSE(adv.instance.validate().has_value());
  const auto result = simulate(adv.instance, "MoveToFront", {.audit = true});
  EXPECT_EQ(result.bins_opened, 10u);
  EXPECT_DOUBLE_EQ(result.cost, 10.0 * 7.0);
  // Every bin holds exactly one odd (1/2) and one even (1/(2n)) item.
  for (const BinRecord& bin : result.packing.bins()) {
    EXPECT_EQ(bin.items.size(), 2u);
  }
}

TEST(MtfLb, FirstFitConsolidatesTheSmallItems) {
  // The same sequence is benign for First Fit: all small items go into the
  // earliest bin, so FF pays ~ n + mu instead of 2*n*mu.
  const std::size_t n = 5;
  const double mu = 7.0;
  const AdversarialInstance adv = gen::mtf_lower_bound(n, mu);
  const auto ff = simulate(adv.instance, "FirstFit", {.audit = true});
  EXPECT_LT(ff.cost, adv.predicted_online_cost / 2.0);
}

TEST(MtfLb, RatioApproachesTwoMu) {
  const double mu = 9.0;
  const AdversarialInstance adv = gen::mtf_lower_bound(40, mu);
  const double cost = simulate(adv.instance, "MoveToFront").cost;
  const double opt_ub = offline_ffd_cost(adv.instance);
  EXPECT_GT(cost / opt_ub, 0.7 * 2.0 * mu);
}

TEST(MtfLb, PredictionMatchesSimulationExactly) {
  const AdversarialInstance adv = gen::mtf_lower_bound(8, 4.0);
  const auto result = simulate(adv.instance, "MoveToFront");
  EXPECT_DOUBLE_EQ(result.cost, adv.predicted_online_cost);
}

// ---- Theorem 7: Best Fit unboundedness ------------------------------------

TEST(BestFitGadget, LuresBestFitIntoKLoneBins) {
  const std::size_t k = 10;
  const AdversarialInstance adv = gen::bestfit_unbounded(k);
  ASSERT_FALSE(adv.instance.validate().has_value());
  const auto bf = simulate(adv.instance, "BestFit", {.audit = true});
  EXPECT_EQ(bf.bins_opened, k);
  EXPECT_NEAR(bf.cost, adv.predicted_online_cost, 1e-9);
}

TEST(BestFitGadget, FirstFitStaysNearOpt) {
  const AdversarialInstance adv = gen::bestfit_unbounded(12);
  const auto bf = simulate(adv.instance, "BestFit");
  const auto ff = simulate(adv.instance, "FirstFit");
  EXPECT_LT(ff.cost * 3.0, bf.cost);
  EXPECT_LE(ff.cost, adv.predicted_opt_upper * 1.01);
}

TEST(BestFitGadget, RatioGrowsWithPhaseCount) {
  double prev = 0.0;
  for (std::size_t k : {5, 10, 20, 40}) {
    const AdversarialInstance adv = gen::bestfit_unbounded(k);
    const double cost = simulate(adv.instance, "BestFit").cost;
    const double opt_ub = offline_ffd_cost(adv.instance);
    const double ratio = cost / opt_ub;
    EXPECT_GT(ratio, prev);
    prev = ratio;
  }
  EXPECT_GT(prev, 8.0);  // k=40 drives the ratio past any small constant
}

TEST(BestFitGadget, ValidatesParameters) {
  EXPECT_THROW(gen::bestfit_unbounded(0), std::invalid_argument);
  EXPECT_THROW(gen::bestfit_unbounded(41), std::invalid_argument);
}

// ---- Cross-checks against the exact OPT on miniature gadgets ---------------

TEST(Adversarial, PredictedOptUpperIsTrueUpperBound) {
  // On instances small enough for the exact solver, predicted_opt_upper
  // must dominate the true OPT.
  {
    const AdversarialInstance adv = gen::anyfit_lower_bound(2, 2, 3.0);
    const auto opt = offline_opt(adv.instance);
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(opt.cost, adv.predicted_opt_upper + 1e-9);
  }
  {
    const AdversarialInstance adv = gen::nextfit_lower_bound(2, 2, 3.0);
    const auto opt = offline_opt(adv.instance);
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(opt.cost, adv.predicted_opt_upper + 1e-9);
  }
  {
    const AdversarialInstance adv = gen::mtf_lower_bound(3, 3.0);
    const auto opt = offline_opt(adv.instance);
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(opt.cost, adv.predicted_opt_upper + 1e-9);
  }
  {
    const AdversarialInstance adv = gen::bestfit_unbounded(6);
    const auto opt = offline_opt(adv.instance);
    ASSERT_TRUE(opt.exact);
    EXPECT_LE(opt.cost, adv.predicted_opt_upper + 1e-9);
  }
}

}  // namespace
}  // namespace dvbp
