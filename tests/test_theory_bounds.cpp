// Theory cross-checks: the Table 1 closed forms, and randomized validation
// of the paper's competitive-ratio *upper bounds* (Thms 2, 3, 4) against
// the exact offline optimum -- on every random instance,
//   cost(MTF) <= ((2mu+1)d + 1) OPT,
//   cost(FF)  <= ((mu+2)d + 1) OPT,
//   cost(NF)  <= (2 mu d + 1) OPT.
#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulator.hpp"
#include "gen/adversarial.hpp"
#include "gen/uniform.hpp"
#include "opt/offline_opt.hpp"

namespace dvbp {
namespace {

TEST(Bounds, ClosedFormsMatchPaper) {
  // Spot values: mu = 10, d = 3.
  EXPECT_DOUBLE_EQ(bounds::any_fit_lower(10, 3), 33.0);      // (mu+1)d
  EXPECT_DOUBLE_EQ(bounds::move_to_front_upper(10, 3), 64.0);  // (2mu+1)d+1
  EXPECT_DOUBLE_EQ(bounds::move_to_front_lower(10, 3), 33.0);  // max{20,33}
  EXPECT_DOUBLE_EQ(bounds::move_to_front_lower(10, 1), 20.0);  // max{20,11}
  EXPECT_DOUBLE_EQ(bounds::first_fit_upper(10, 3), 37.0);      // (mu+2)d+1
  EXPECT_DOUBLE_EQ(bounds::next_fit_upper(10, 3), 61.0);       // 2mud+1
  EXPECT_DOUBLE_EQ(bounds::next_fit_lower(10, 3), 60.0);       // 2mud
  EXPECT_TRUE(std::isinf(bounds::best_fit_upper(10, 3)));
}

TEST(Bounds, OneDimensionalSpecializations) {
  // d = 1 recovers the known 1-D results cited in the paper.
  EXPECT_DOUBLE_EQ(bounds::move_to_front_upper(5, 1), 12.0);  // 2mu+2
  EXPECT_DOUBLE_EQ(bounds::first_fit_upper(5, 1), 8.0);       // mu+3
  EXPECT_DOUBLE_EQ(bounds::next_fit_upper(5, 1), 11.0);       // 2mu+1
  EXPECT_DOUBLE_EQ(bounds::any_fit_lower(5, 1), 6.0);         // mu+1
}

TEST(Bounds, UpperAlwaysAtLeastLower) {
  for (double mu : {1.0, 2.0, 10.0, 100.0}) {
    for (double d : {1.0, 2.0, 5.0}) {
      EXPECT_GE(bounds::move_to_front_upper(mu, d),
                bounds::move_to_front_lower(mu, d));
      EXPECT_GE(bounds::first_fit_upper(mu, d),
                bounds::first_fit_lower(mu, d));
      EXPECT_GE(bounds::next_fit_upper(mu, d), bounds::next_fit_lower(mu, d));
    }
  }
}

TEST(Bounds, Table1HasFiveRows) {
  const auto rows = bounds::table1(10.0, 2.0);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].algorithm, "AnyFit");
  EXPECT_TRUE(std::isinf(rows[0].upper_dd));
  EXPECT_EQ(rows[4].algorithm, "BestFit");
  EXPECT_TRUE(std::isinf(rows[4].lower_1d));
}

// ---- Randomized upper-bound validation against exact OPT ------------------

struct UbCase {
  std::size_t d;
  std::int64_t mu;
  std::uint64_t seed;
};

class CrUpperBoundTest : public ::testing::TestWithParam<UbCase> {};

TEST_P(CrUpperBoundTest, CostWithinProvedFactorOfExactOpt) {
  const UbCase& c = GetParam();
  gen::UniformParams params;
  params.d = c.d;
  params.n = 40;       // small enough for exact OPT
  params.mu = c.mu;
  params.span = 30;
  params.bin_size = 7;
  const Instance inst = gen::uniform_instance(params, c.seed);

  const auto opt = offline_opt(inst);
  ASSERT_TRUE(opt.exact);
  ASSERT_GT(opt.cost, 0.0);

  // The realized mu of the instance may be below the generator cap.
  const double mu = inst.mu();
  const double d = static_cast<double>(c.d);

  const double mtf = simulate(inst, "MoveToFront").cost;
  EXPECT_LE(mtf, bounds::move_to_front_upper(mu, d) * opt.cost + 1e-6);

  const double ff = simulate(inst, "FirstFit").cost;
  EXPECT_LE(ff, bounds::first_fit_upper(mu, d) * opt.cost + 1e-6);

  const double nf = simulate(inst, "NextFit").cost;
  EXPECT_LE(nf, bounds::next_fit_upper(mu, d) * opt.cost + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Random, CrUpperBoundTest,
    ::testing::Values(UbCase{1, 3, 1}, UbCase{1, 3, 2}, UbCase{1, 8, 3},
                      UbCase{1, 8, 4}, UbCase{2, 3, 5}, UbCase{2, 3, 6},
                      UbCase{2, 8, 7}, UbCase{2, 8, 8}, UbCase{3, 5, 9},
                      UbCase{3, 5, 10}, UbCase{5, 4, 11}, UbCase{5, 4, 12}),
    [](const ::testing::TestParamInfo<UbCase>& info) {
      return "d" + std::to_string(info.param.d) + "_mu" +
             std::to_string(info.param.mu) + "_s" +
             std::to_string(info.param.seed);
    });

// The adversarial instances must also respect the upper bounds -- a lower
// bound construction cannot exceed what the theorems allow. The Thm 8
// instance is small enough for exact OPT.
TEST(Bounds, MtfWorstCaseStillWithinTheorem2) {
  const auto adv = gen::mtf_lower_bound(4, 6.0);
  const auto opt = offline_opt(adv.instance);
  ASSERT_TRUE(opt.exact);
  const double mtf = simulate(adv.instance, "MoveToFront").cost;
  const double mu = adv.instance.mu();
  EXPECT_LE(mtf, bounds::move_to_front_upper(mu, 1.0) * opt.cost + 1e-6);
  // And the construction must actually exceed a trivial 1x ratio by a lot.
  EXPECT_GT(mtf, 3.0 * opt.cost);
}

}  // namespace
}  // namespace dvbp
