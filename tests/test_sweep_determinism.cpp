// Pins two determinism promises no test previously covered:
//
//  1. src/harness/sweep.hpp: "every trial derives its own RNG stream, so
//     results are identical regardless of thread count". Verified
//     cell-for-cell (ratio/bins/max_open accumulators, bit-exact doubles)
//     for threads in {1, 2, 8} on the same seed.
//
//  2. Rendezvous routing in the sharded service: the shard assignment is a
//     pure function of (job id, shard count) -- independent of queue
//     capacity, batch size, and drain timing.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/event.hpp"
#include "core/policies/registry.hpp"
#include "gen/registry.hpp"
#include "gen/uniform.hpp"
#include "harness/sweep.hpp"

namespace dvbp {
namespace {

harness::SweepConfig sweep_config(std::size_t threads) {
  harness::SweepConfig config;
  config.trials = 16;
  config.seed = 0xFEEDFACEu;
  config.threads = threads;
  return config;
}

void expect_identical_cells(const std::vector<harness::PolicyCell>& a,
                            const std::vector<harness::PolicyCell>& b,
                            const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t p = 0; p < a.size(); ++p) {
    const harness::PolicyCell& x = a[p];
    const harness::PolicyCell& y = b[p];
    EXPECT_EQ(x.policy, y.policy) << context;
    // Accumulation happens in trial order on the merge pass, so every
    // statistic must be bit-identical, not merely close.
    EXPECT_EQ(x.ratio.count(), y.ratio.count()) << context << " " << x.policy;
    EXPECT_EQ(x.ratio.mean(), y.ratio.mean()) << context << " " << x.policy;
    EXPECT_EQ(x.ratio.min(), y.ratio.min()) << context << " " << x.policy;
    EXPECT_EQ(x.ratio.max(), y.ratio.max()) << context << " " << x.policy;
    EXPECT_EQ(x.ratio.variance(), y.ratio.variance())
        << context << " " << x.policy;
    EXPECT_EQ(x.bins.mean(), y.bins.mean()) << context << " " << x.policy;
    EXPECT_EQ(x.bins.min(), y.bins.min()) << context << " " << x.policy;
    EXPECT_EQ(x.bins.max(), y.bins.max()) << context << " " << x.policy;
    EXPECT_EQ(x.max_open.mean(), y.max_open.mean())
        << context << " " << x.policy;
    EXPECT_EQ(x.max_open.max(), y.max_open.max())
        << context << " " << x.policy;
  }
}

TEST(SweepDeterminism, CellsIdenticalAcrossThreadCounts) {
  gen::UniformParams params;
  params.n = 120;
  params.d = 2;
  params.mu = 8;
  params.span = 200;
  params.bin_size = 20;
  const gen::GeneratorFn generate =
      gen::make_generator("uniform", params, /*seed=*/7);
  // RandomFit's per-trial seed derivation is the part most likely to break
  // under reordering; DurationClassFit covers the clairvoyant path.
  const std::vector<std::string> policies{"MoveToFront", "FirstFit",
                                          "RandomFit", "DurationClassFit"};

  const auto base = run_policy_sweep(generate, policies, sweep_config(1));
  for (std::size_t threads : {2u, 8u}) {
    const auto other =
        run_policy_sweep(generate, policies, sweep_config(threads));
    expect_identical_cells(base, other,
                           "threads=" + std::to_string(threads));
  }
}

// ---------------------------------------------------------------------------

/// Feeds `inst`'s event stream and returns each job's shard assignment.
std::vector<std::size_t> shard_assignment(const Instance& inst,
                                          cloud::ShardedOptions options,
                                          bool drain_every_op) {
  cloud::ShardedDispatcher service(
      inst.dim(), [](std::size_t) { return make_policy("FirstFit"); },
      options);
  const auto events = build_event_stream(inst);
  for (const Event& ev : events) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      service.arrive(item.arrival, item.size, item.departure);
    } else {
      service.depart(ev.time, item.id);
    }
    if (drain_every_op) service.drain();
  }
  service.drain();
  std::vector<std::size_t> shards(inst.size());
  for (JobId j = 0; j < inst.size(); ++j) shards[j] = service.shard_of(j);
  return shards;
}

TEST(SweepDeterminism, RendezvousShardAssignmentIndependentOfQueueTiming) {
  gen::UniformParams params;
  params.n = 400;
  params.d = 2;
  params.mu = 10;
  params.span = 300;
  params.bin_size = 30;
  const Instance inst = gen::uniform_instance(params, 0xBEEF);

  cloud::ShardedOptions base;
  base.shards = 4;
  base.router = cloud::RouterKind::kRendezvous;

  const auto reference = shard_assignment(inst, base, false);

  // Tiny queues force producer backpressure; max_batch=1 forces one apply
  // per wakeup; draining after every op serializes the service completely.
  cloud::ShardedOptions tiny = base;
  tiny.queue_capacity = 1;
  tiny.max_batch = 1;
  EXPECT_EQ(shard_assignment(inst, tiny, false), reference);
  EXPECT_EQ(shard_assignment(inst, base, true), reference);

  // The assignment is the argmax of the published score function -- i.e. a
  // pure function of (job id, shard count), nothing else.
  for (JobId j = 0; j < inst.size(); ++j) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < base.shards; ++s) {
      if (cloud::rendezvous_score(j, s) > cloud::rendezvous_score(j, best)) {
        best = s;
      }
    }
    EXPECT_EQ(reference[j], best) << "job " << j;
  }
}

TEST(SweepDeterminism, RendezvousSpreadsLoadAcrossShards) {
  // Not a balance guarantee, but a regression guard against a degenerate
  // score function routing everything to one shard.
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kJobs = 4000;
  std::vector<std::size_t> counts(kShards, 0);
  for (JobId j = 0; j < kJobs; ++j) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < kShards; ++s) {
      if (cloud::rendezvous_score(j, s) > cloud::rendezvous_score(j, best)) {
        best = s;
      }
    }
    ++counts[best];
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], kJobs / kShards / 2) << "shard " << s;
    EXPECT_LT(counts[s], kJobs * 2 / kShards) << "shard " << s;
  }
}

}  // namespace
}  // namespace dvbp
