// Budget-0 differential pinning: with migrations disabled the migration-
// capable engine must be BIT-EXACT with the pre-migration engine. The
// live Dispatcher (+ an attached zero-budget Rebalancer) replays the same
// golden workloads test_golden_packings.cpp pins and must reproduce the
// recorded FNV-1a hashes for all ten policies -- while the
// PackingInvariantChecker passes after every event. A K=3 sharded service
// with a zero-move shard-rebalance pass must likewise match a run without
// the pass, bin for bin.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/invariants.hpp"
#include "core/packing.hpp"
#include "core/policies/registry.hpp"
#include "core/rebalancer.hpp"
#include "gen/adversarial.hpp"
#include "gen/uniform.hpp"
#include "packing_hash.hpp"

namespace dvbp {
namespace {

constexpr std::uint64_t kPolicySeed = 0xD1CEu;

const char* const kPolicies[] = {
    "MoveToFront", "FirstFit",        "BestFit",     "NextFit",
    "LastFit",     "RandomFit",       "WorstFit",    "MinExtensionFit",
    "HarmonicFit", "DurationClassFit"};

// Same workload set test_golden_packings.cpp hashes were recorded on.
std::vector<std::pair<std::string, Instance>> golden_workloads() {
  std::vector<std::pair<std::string, Instance>> out;
  for (std::size_t d : {1u, 2u, 5u}) {
    gen::UniformParams params;
    params.d = d;
    params.n = 400;
    params.mu = 12;
    params.span = 100;
    params.bin_size = 9;
    out.emplace_back("uniform_d" + std::to_string(d),
                     gen::uniform_instance(params, 0xA11CE + d));
  }
  out.emplace_back("adv_anyfit",
                   gen::anyfit_lower_bound(/*k=*/6, /*d=*/2, /*mu=*/5.0)
                       .instance);
  out.emplace_back("adv_nextfit",
                   gen::nextfit_lower_bound(/*k=*/6, /*d=*/2, /*mu=*/4.0)
                       .instance);
  out.emplace_back("adv_mtf", gen::mtf_lower_bound(/*n=*/8, /*mu=*/6.0)
                                  .instance);
  out.emplace_back("adv_bestfit", gen::bestfit_unbounded(/*k=*/10).instance);
  return out;
}

struct GoldenEntry {
  const char* workload;
  const char* policy;
  std::uint64_t hash;
};

const GoldenEntry kGolden[] = {
#include "golden_packings.inc"
};

std::uint64_t expected_hash(const std::string& workload,
                            const std::string& policy) {
  for (const GoldenEntry& e : kGolden) {
    if (workload == e.workload && policy == e.policy) return e.hash;
  }
  ADD_FAILURE() << "no golden entry for " << workload << "/" << policy;
  return 0;
}

// With budget 0 the zero-budget engine's golden hashes must hold for all
// ten policies -- including the class-structured ones the rebalancer
// avoids at budget > 0 -- because the arrive/depart code paths are the
// pre-migration ones, byte for byte. The invariant checker rides along
// on every event; the exec callbacks count that no mutation ever fires.
TEST(MigrationParity, ZeroBudgetMatchesGoldenHashesForAllPolicies) {
  for (const auto& [name, inst] : golden_workloads()) {
    const auto events = build_event_stream(inst);
    for (const char* policy_name : kPolicies) {
      SCOPED_TRACE(name + std::string("/") + policy_name);
      PolicyPtr policy = make_policy(policy_name, kPolicySeed);
      Dispatcher dispatcher(inst.dim(), *policy);
      std::size_t mutations = 0;
      Rebalancer rebalancer(
          dispatcher, MigrationConfig{},  // 0 migrations/event
          MigrationExec{
              [&](Time, JobId) { ++mutations; },
              [&](Time, JobId, BinId) -> BinId {
                ++mutations;
                return kNoBin;
              }});
      PackingInvariantChecker checker;
      for (const Event& ev : events) {
        const Item& item = inst[ev.item];
        if (ev.kind == EventKind::kArrival) {
          dispatcher.arrive(item.arrival, item.size, item.departure);
        } else {
          dispatcher.depart(ev.time, item.id);
          rebalancer.on_departure(ev.time);
        }
        const auto err = checker.check(dispatcher);
        ASSERT_FALSE(err.has_value()) << *err;
      }
      EXPECT_EQ(mutations, 0u) << "zero budget must never mutate";
      EXPECT_EQ(packing_hash(dispatcher.packing()),
                expected_hash(name, policy_name))
          << "budget-0 engine diverged from the pinned golden packing";
    }
  }
}

// The Packing materialized through the migration-aware accessor
// (last-bin assignment) must agree with the historical records-derived
// assignment when no migration happened.
TEST(MigrationParity, PackingAccessorAgreesWithRecordsWithoutMigration) {
  const auto workloads = golden_workloads();
  const auto& [name, inst] = workloads[1];  // uniform_d2
  (void)name;
  PolicyPtr policy = make_policy("BestFit", kPolicySeed);
  Dispatcher dispatcher(inst.dim(), *policy);
  for (const Event& ev : build_event_stream(inst)) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      dispatcher.arrive(item.arrival, item.size, item.departure);
    } else {
      dispatcher.depart(ev.time, item.id);
    }
  }
  std::vector<BinId> from_records(dispatcher.jobs_admitted(), kNoBin);
  for (const BinRecord& rec : dispatcher.records()) {
    for (ItemId it : rec.items) from_records[it] = rec.id;
  }
  EXPECT_EQ(dispatcher.packing().assignment(), from_records);
}

// K=3 sharded service: a zero-move rebalance pass at the stream midpoint
// (drain, rebalance_shards with max_moves=0, resume) must leave the final
// merged packing identical to a run without the pass.
TEST(MigrationParity, ShardedZeroMoveRebalanceIsANoOp) {
  const auto workloads = golden_workloads();
  const auto& [name, inst] = workloads[1];  // uniform_d2
  (void)name;
  const auto events = build_event_stream(inst);
  for (const char* policy_name : {"MoveToFront", "FirstFit"}) {
    SCOPED_TRACE(policy_name);
    const auto factory = [policy_name](std::size_t) {
      return make_policy(policy_name, kPolicySeed);
    };
    cloud::ShardedOptions options;
    options.shards = 3;
    options.router = cloud::RouterKind::kRoundRobin;

    std::uint64_t hashes[2];
    for (const bool with_pass : {false, true}) {
      cloud::ShardedDispatcher service(inst.dim(), factory, options);
      const std::size_t midpoint = events.size() / 2;
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (with_pass && i == midpoint) {
          service.drain();
          cloud::ShardRebalanceConfig config;
          config.max_moves = 0;
          const cloud::ShardRebalanceReport report =
              service.rebalance_shards(events[i].time, config);
          EXPECT_EQ(report.moves, 0u);
          EXPECT_DOUBLE_EQ(report.moved_volume, 0.0);
        }
        const Event& ev = events[i];
        const Item& item = inst[ev.item];
        if (ev.kind == EventKind::kArrival) {
          service.arrive(item.arrival, item.size, item.departure);
        } else {
          service.depart(ev.time, item.id);
        }
      }
      service.drain();
      hashes[with_pass] = packing_hash(service.snapshot());
    }
    EXPECT_EQ(hashes[0], hashes[1])
        << "a zero-move rebalance pass changed the packing";
  }
}

// A real (non-zero) shard rebalance must keep every job exactly once in
// the merged snapshot and preserve per-shard invariants at quiescence.
TEST(MigrationParity, ShardedRebalanceKeepsSnapshotConsistent) {
  const auto workloads = golden_workloads();
  const auto& [name, inst] = workloads[1];  // uniform_d2
  (void)name;
  const auto events = build_event_stream(inst);
  cloud::ShardedOptions options;
  options.shards = 3;
  options.router = cloud::RouterKind::kRoundRobin;
  cloud::ShardedDispatcher service(
      inst.dim(),
      [](std::size_t) { return make_policy("FirstFit", kPolicySeed); },
      options);
  const std::size_t midpoint = events.size() / 2;
  std::size_t moves = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i == midpoint) {
      service.drain();
      cloud::ShardRebalanceConfig config;
      config.skew_ratio = 1.0;  // aggressive: any imbalance qualifies
      config.min_gap = 0.0;
      config.max_moves = 8;
      moves = service.rebalance_shards(events[i].time, config).moves;
      // Per-shard state is checkable at quiescence.
      for (std::size_t s = 0; s < 3; ++s) {
        PackingInvariantChecker shard_checker;
        const auto err = shard_checker.check(service.shard_dispatcher(s));
        ASSERT_FALSE(err.has_value()) << "shard " << s << ": " << *err;
      }
    }
    const Event& ev = events[i];
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      service.arrive(item.arrival, item.size, item.departure);
    } else {
      service.depart(ev.time, item.id);
    }
  }
  service.drain();
  EXPECT_GT(moves, 0u) << "midpoint load was never skewed enough to move";

  const Packing merged = service.snapshot();
  // A moved job is admitted on both shards, so the merged assignment has
  // `moves` extra all-kNoBin slots past the real global ids.
  ASSERT_EQ(merged.assignment().size(), inst.size() + moves);
  for (std::size_t j = inst.size(); j < merged.assignment().size(); ++j) {
    EXPECT_EQ(merged.assignment()[j], kNoBin);
  }
  std::vector<std::size_t> listed(inst.size(), 0);
  for (const BinRecord& rec : merged.bins()) {
    for (ItemId it : rec.items) ++listed[it];
  }
  for (std::size_t j = 0; j < inst.size(); ++j) {
    // A rebalanced job appears in bins of two shards; everyone else once.
    EXPECT_GE(listed[j], 1u) << "job " << j;
    EXPECT_LE(listed[j], 2u) << "job " << j;
    EXPECT_NE(merged.assignment()[j], kNoBin) << "job " << j;
  }
  EXPECT_EQ(service.jobs_active(), 0u);
}

}  // namespace
}  // namespace dvbp
