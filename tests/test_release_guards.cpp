// Error paths that must survive NDEBUG builds. These guards used to be
// assert()-only, which meant a Release build would erase end() iterators
// or return understated costs instead of failing; they are now real
// checks with typed exceptions, and this suite runs in both the Debug and
// the Release CI jobs (the latter with asserts compiled out).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/bin_state.hpp"
#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/policies/registry.hpp"
#include "core/simulator.hpp"

namespace dvbp {
namespace {

TEST(ReleaseGuards, BinStateRemoveUnknownItemThrows) {
  const Item present(0, 0.0, 2.0, RVec{0.4});
  const Item absent(1, 0.0, 3.0, RVec{0.3});
  UsagePool pool;
  BinState bin(0, 1, 0.0, 1.0, &pool);
  bin.add(present);
  EXPECT_THROW(bin.remove(absent), std::logic_error);
  // The failed removal must not have corrupted the load.
  EXPECT_NEAR(bin.load()[0], 0.4, 1e-12);
  EXPECT_EQ(bin.num_active(), 1u);
}

TEST(ReleaseGuards, BinStateRemoveTwiceThrows) {
  const Item item(0, 0.0, 2.0, RVec{0.4});
  const Item other(1, 0.0, 3.0, RVec{0.3});
  UsagePool pool;
  BinState bin(0, 1, 0.0, 1.0, &pool);
  bin.add(item);
  bin.add(other);
  EXPECT_FALSE(bin.remove(item));
  EXPECT_THROW(bin.remove(item), std::logic_error);
}

TEST(ReleaseGuards, DispatcherDepartUnknownJobThrows) {
  PolicyPtr policy = make_policy("FirstFit");
  Dispatcher dispatcher(1, *policy);
  dispatcher.arrive(0.0, RVec{0.5}, 10.0);
  EXPECT_THROW(dispatcher.depart(1.0, 42), std::invalid_argument);
}

TEST(ReleaseGuards, DispatcherDepartTwiceThrows) {
  PolicyPtr policy = make_policy("FirstFit");
  Dispatcher dispatcher(1, *policy);
  const auto admission = dispatcher.arrive(0.0, RVec{0.5}, 10.0);
  dispatcher.depart(1.0, admission.job);
  EXPECT_THROW(dispatcher.depart(2.0, admission.job),
               std::invalid_argument);
}

TEST(ReleaseGuards, TruncatedEventStreamThrows) {
  // Dropping trailing departures leaves bins open when the stream drains;
  // silently accepting that would understate the packing's cost.
  Instance inst(1);
  inst.add(0.0, 4.0, RVec{0.6});
  inst.add(1.0, 5.0, RVec{0.6});
  std::vector<Event> events = build_event_stream(inst);
  ASSERT_EQ(events.size(), 4u);
  events.resize(2);  // both arrivals only
  PolicyPtr policy = make_policy("FirstFit");
  EXPECT_THROW(simulate_events(inst, events, *policy), std::logic_error);
}

TEST(ReleaseGuards, DepartureBeforeArrivalThrows) {
  Instance inst(1);
  inst.add(0.0, 4.0, RVec{0.6});
  std::vector<Event> events = build_event_stream(inst);
  std::swap(events[0], events[1]);  // departure first
  PolicyPtr policy = make_policy("FirstFit");
  EXPECT_THROW(simulate_events(inst, events, *policy), std::logic_error);
}

TEST(ReleaseGuards, DuplicateDepartureThrows) {
  Instance inst(1);
  inst.add(0.0, 4.0, RVec{0.6});
  inst.add(1.0, 5.0, RVec{0.2});
  std::vector<Event> events = build_event_stream(inst);
  // Duplicate item 0's departure; its bin already closed the first time.
  for (const Event& ev : build_event_stream(inst)) {
    if (ev.kind == EventKind::kDeparture && ev.item == 0) {
      events.push_back(ev);
    }
  }
  PolicyPtr policy = make_policy("FirstFit");
  EXPECT_THROW(simulate_events(inst, events, *policy), std::logic_error);
}

TEST(ReleaseGuards, EventBeyondInstanceThrows) {
  Instance inst(1);
  inst.add(0.0, 4.0, RVec{0.6});
  std::vector<Event> events = build_event_stream(inst);
  events.push_back(Event{5.0, EventKind::kArrival, 7});
  PolicyPtr policy = make_policy("FirstFit");
  EXPECT_THROW(simulate_events(inst, events, *policy),
               std::invalid_argument);
}

TEST(ReleaseGuards, CompleteEventStreamMatchesSimulate) {
  Instance inst(2);
  inst.add(0.0, 4.0, RVec{0.6, 0.1});
  inst.add(1.0, 5.0, RVec{0.6, 0.2});
  inst.add(2.0, 3.0, RVec{0.3, 0.3});
  const auto events = build_event_stream(inst);
  PolicyPtr a = make_policy("FirstFit");
  PolicyPtr b = make_policy("FirstFit");
  const SimResult via_events = simulate_events(inst, events, *a);
  const SimResult direct = simulate(inst, *b);
  EXPECT_EQ(via_events.packing.assignment(), direct.packing.assignment());
  EXPECT_DOUBLE_EQ(via_events.cost, direct.cost);
}

}  // namespace
}  // namespace dvbp
