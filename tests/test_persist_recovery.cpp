// Crash-recovery fuzz: for every registered policy, kill the durable
// dispatcher at every byte offset of the journal's tail frame (truncation
// AND single-byte corruption) and at every registered fault point, then
// recover and require the recovered state to be bit-identical to an
// uninterrupted run over the surviving prefix (dispatcher_state_hash from
// packing_hash.hpp hashes raw load bits, so "equal" means equal futures).
// A sharded K=4 service killed mid-drain by an injected commit fault is
// recovered the same way, shard by shard. A journal whose tail carries
// tenant-credit (kTenantCredits) frames gets the same every-byte-offset
// treatment: the surviving prefix must reproduce the dispatcher, the
// usage ledgers, AND the last surviving credit snapshot bit for bit.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/invariants.hpp"
#include "core/policies/registry.hpp"
#include "core/rebalancer.hpp"
#include "core/simulator.hpp"
#include "gen/tenants.hpp"
#include "gen/uniform.hpp"
#include "packing_hash.hpp"
#include "persist/durable.hpp"
#include "persist/fault.hpp"
#include "persist/journal.hpp"
#include "tenancy/accountant.hpp"
#include "tenancy/arbiter.hpp"

namespace dvbp {
namespace {

namespace fs = std::filesystem;
using persist::FsyncPolicy;

constexpr std::uint64_t kPolicySeed = 0xD1CEu;

const char* const kPolicies[] = {
    "MoveToFront", "FirstFit",        "BestFit",     "NextFit",
    "LastFit",     "RandomFit",       "WorstFit",    "MinExtensionFit",
    "HarmonicFit", "DurationClassFit"};

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("dvbp_recovery_" + tag + "_" + std::to_string(++counter) +
            "_" + std::to_string(static_cast<unsigned>(::getpid())));
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

Instance fuzz_instance() {
  gen::UniformParams params;
  params.d = 2;
  params.n = 120;
  params.mu = 12;
  params.span = 60;
  params.bin_size = 9;
  return gen::uniform_instance(params, 0xC4A54);
}

/// Expected recovered state: a plain serial Dispatcher fed the first
/// `ops` events (one journaled op per event).
std::uint64_t prefix_hash(const char* policy_name, const Instance& inst,
                          const std::vector<Event>& events,
                          std::size_t ops) {
  PolicyPtr policy = make_policy(policy_name, kPolicySeed);
  Dispatcher reference(inst.dim(), *policy);
  for (std::size_t i = 0; i < ops; ++i) {
    const Event& ev = events[i];
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      reference.arrive(item.arrival, item.size, item.departure);
    } else {
      reference.depart(ev.time, item.id);
    }
  }
  return dispatcher_state_hash(reference);
}

/// Runs the full workload durably (no checkpoints, fsync off: one segment
/// with one frame per event) and returns the journal directory.
void run_full_durable(const char* policy_name, const Instance& inst,
                      const std::vector<Event>& events,
                      const std::string& dir) {
  PolicyPtr policy = make_policy(policy_name, kPolicySeed);
  persist::DurableOptions opts;
  opts.dir = dir;
  opts.fsync = FsyncPolicy::kNone;
  persist::DurableDispatcher durable(inst.dim(), *policy, opts);
  for (const Event& ev : events) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      durable.arrive(item.arrival, item.size, item.departure);
    } else {
      durable.depart(ev.time, item.id);
    }
  }
}

/// Recovers from `dir` and checks the recovered state (and recovery
/// report) against an uninterrupted prefix run of `expect_ops` events.
void expect_prefix_recovery(const char* policy_name, const Instance& inst,
                            const std::vector<Event>& events,
                            const std::string& dir, std::size_t expect_ops,
                            bool expect_torn, const std::string& what) {
  PolicyPtr policy = make_policy(policy_name, kPolicySeed);
  persist::DurableOptions opts;
  opts.dir = dir;
  opts.fsync = FsyncPolicy::kNone;
  persist::DurableDispatcher recovered(inst.dim(), *policy, opts);
  EXPECT_EQ(recovered.recovery().last_seq, expect_ops) << what;
  EXPECT_EQ(recovered.recovery().torn_tail, expect_torn) << what;
  EXPECT_EQ(dispatcher_state_hash(recovered.dispatcher()),
            prefix_hash(policy_name, inst, events, expect_ops))
      << what << ": recovered state != uninterrupted prefix run";
}

// Byte-offset fuzz: chop (or flip a byte inside) the journal's last frame
// at EVERY offset. Truncation inside the frame and any single corrupted
// byte must both cost exactly that one frame -- never a crash, never a
// wrong packing.
TEST(CrashFuzz, EveryTailFrameByteOffsetTruncateAndCorrupt) {
  const Instance inst = fuzz_instance();
  const std::vector<Event> events = build_event_stream(inst);
  for (const char* policy_name : kPolicies) {
    SCOPED_TRACE(policy_name);
    TempDir base(std::string("base_") + policy_name);
    run_full_durable(policy_name, inst, events, base.str());

    const auto segments = persist::journal_segments(base.str());
    ASSERT_EQ(segments.size(), 1u);
    std::ifstream in(segments[0], std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    // Find where the last frame starts by walking the valid frames.
    const persist::JournalScan scan = persist::scan_journal(base.str());
    ASSERT_FALSE(scan.torn_tail);
    ASSERT_EQ(scan.records.size(), events.size());
    std::vector<std::uint8_t> tail_frame;
    persist::encode_frame(scan.records.back(), tail_frame);
    const std::size_t tail_start = bytes.size() - tail_frame.size();

    const std::string seg_name = fs::path(segments[0]).filename().string();
    for (std::size_t off = tail_start; off < bytes.size(); ++off) {
      // Truncate at `off`: a partial tail frame (or, at off == tail_start,
      // a clean frame boundary -- no tear at all).
      {
        TempDir trial("trunc");
        fs::create_directories(trial.str());
        std::ofstream out(trial.path / seg_name, std::ios::binary);
        out.write(bytes.data(), static_cast<std::streamsize>(off));
        out.close();
        expect_prefix_recovery(
            policy_name, inst, events, trial.str(), events.size() - 1,
            /*expect_torn=*/off != tail_start,
            "truncate@" + std::to_string(off));
      }
      // Flip one byte at `off`: CRC (or frame sanity) must reject the
      // frame, costing exactly the one frame.
      {
        TempDir trial("flip");
        fs::create_directories(trial.str());
        std::vector<char> mutated = bytes;
        mutated[off] = static_cast<char>(mutated[off] ^ 0x5A);
        std::ofstream out(trial.path / seg_name, std::ios::binary);
        out.write(mutated.data(),
                  static_cast<std::streamsize>(mutated.size()));
        out.close();
        expect_prefix_recovery(policy_name, inst, events, trial.str(),
                               events.size() - 1, /*expect_torn=*/true,
                               "flip@" + std::to_string(off));
      }
    }
  }
}

// Fault-point fuzz: kill the writer at every registered durability fault
// point (mid-commit, mid-checkpoint) while running with checkpoints on,
// recover, and require prefix parity. The op count folded into the
// recovered state is read from the recovery report and cross-checked
// against what the fault semantics allow.
TEST(CrashFuzz, EveryFaultPointRecoversToAPrefix) {
  const Instance inst = fuzz_instance();
  const std::vector<Event> events = build_event_stream(inst);
  // `nth`: which occurrence of the point to crash at. Commit points fire
  // once per op (~240 per run); checkpoint points once per checkpoint
  // (every 32 ops), so their countdowns are smaller.
  const struct {
    const char* point;
    bool op_survives;  ///< frame durable despite the fault?
    int nth;
  } kFaults[] = {
      {"journal.commit.begin", false, 70},
      {"journal.commit.torn", false, 70},
      {"journal.commit.written", true, 70},
      {"journal.commit.synced", true, 70},
      {"checkpoint.tmp_written", true, 3},
      {"checkpoint.renamed", true, 3},
      {"checkpoint.truncated", true, 3},
  };
  for (const char* policy_name : {"MoveToFront", "RandomFit", "NextFit"}) {
    SCOPED_TRACE(policy_name);
    for (const auto& fault : kFaults) {
      SCOPED_TRACE(fault.point);
      TempDir dir(std::string("fault"));
      // Arm the hook to fire on the Nth occurrence of the point, landing
      // mid-run (after the first checkpoint for the checkpoint points).
      int countdown = fault.nth;
      persist::set_fault_hook([&](std::string_view point) {
        if (point == fault.point && --countdown == 0) {
          throw persist::FaultInjected(point);
        }
      });
      std::size_t ops_issued = 0;
      bool crashed = false;
      {
        PolicyPtr policy = make_policy(policy_name, kPolicySeed);
        persist::DurableOptions opts;
        opts.dir = dir.str();
        opts.fsync = FsyncPolicy::kNone;
        opts.checkpoint_every = 32;
        persist::DurableDispatcher durable(inst.dim(), *policy, opts);
        try {
          for (const Event& ev : events) {
            const Item& item = inst[ev.item];
            if (ev.kind == EventKind::kArrival) {
              durable.arrive(item.arrival, item.size, item.departure);
            } else {
              durable.depart(ev.time, item.id);
            }
            ++ops_issued;
          }
        } catch (const persist::FaultInjected&) {
          crashed = true;  // abandon the object, like a process death
        }
      }
      persist::clear_fault_hook();
      ASSERT_TRUE(crashed) << "fault never fired";

      // The op being journaled when the fault hit survives only past the
      // write; checkpoint-path faults fire after their op committed.
      const std::size_t expect_ops =
          fault.op_survives ? ops_issued + 1 : ops_issued;
      PolicyPtr policy = make_policy(policy_name, kPolicySeed);
      persist::DurableOptions opts;
      opts.dir = dir.str();
      opts.fsync = FsyncPolicy::kNone;
      persist::DurableDispatcher recovered(inst.dim(), *policy, opts);
      EXPECT_EQ(recovered.recovery().last_seq, expect_ops) << fault.point;
      EXPECT_EQ(
          dispatcher_state_hash(recovered.dispatcher()),
          prefix_hash(policy_name, inst, events, expect_ops))
          << fault.point << ": recovered state != prefix run";
    }
  }
}

// Migration-era tail fuzz: stop a durable run right after its FIRST
// migration, so the journal's tail is the dangerous sequence
// [kDepart, kEvict, kReplace, ...]. Truncating or corrupting at EVERY
// byte offset inside that tail must recover to exactly the surviving
// frame prefix -- including prefixes that end between an eviction and
// its replace, where the recovered engine legitimately holds a job in
// limbo. The reference is a plain Dispatcher replaying the surviving
// JournalRecords directly, and the recovered state must additionally
// satisfy the packing invariant checker.
TEST(CrashFuzz, MigrationTailEveryByteOffsetTruncateAndCorrupt) {
  const Instance inst = fuzz_instance();
  const std::vector<Event> events = build_event_stream(inst);
  TempDir base("migration_base");
  std::uint64_t live_hash = 0;
  std::size_t ops_issued = 0;
  {
    PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
    persist::DurableOptions opts;
    opts.dir = base.str();
    opts.fsync = FsyncPolicy::kNone;
    persist::DurableDispatcher durable(inst.dim(), *policy, opts);
    MigrationConfig config;
    config.migrations_per_event = MigrationConfig::kUnlimited;
    Rebalancer rebalancer(durable.dispatcher(), config,
                          durable.migration_exec());
    for (const Event& ev : events) {
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        durable.arrive(item.arrival, item.size, item.departure);
        ++ops_issued;
      } else {
        durable.depart(ev.time, item.id);
        ++ops_issued;
        const std::size_t moved = rebalancer.on_departure(ev.time);
        ops_issued += 2 * moved;  // one kEvict + one kReplace per item
        if (moved > 0) break;
      }
    }
    ASSERT_GT(rebalancer.stats().migrations, 0u)
        << "workload never triggered a migration";
    live_hash = dispatcher_state_hash(durable.dispatcher());
  }

  const auto segments = persist::journal_segments(base.str());
  ASSERT_EQ(segments.size(), 1u);
  std::ifstream in(segments[0], std::ios::binary);
  const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  const persist::JournalScan scan = persist::scan_journal(base.str());
  ASSERT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), ops_issued);

  // Byte offset where each frame starts; frame_start.back() == EOF.
  std::vector<std::size_t> frame_start;
  {
    std::vector<std::uint8_t> buf;
    for (const persist::JournalRecord& rec : scan.records) {
      frame_start.push_back(buf.size());
      persist::encode_frame(rec, buf);
    }
    frame_start.push_back(buf.size());
    ASSERT_EQ(buf.size(), bytes.size());
  }

  // The fuzz region: from the depart frame that triggered the migration.
  std::size_t depart_idx = scan.records.size();
  std::size_t evicts = 0;
  std::size_t replaces = 0;
  while (depart_idx > 0 &&
         scan.records[depart_idx - 1].kind != persist::OpKind::kDepart) {
    --depart_idx;
    if (scan.records[depart_idx].kind == persist::OpKind::kEvict) ++evicts;
    if (scan.records[depart_idx].kind == persist::OpKind::kReplace) {
      ++replaces;
    }
  }
  ASSERT_GT(depart_idx, 0u);
  --depart_idx;
  ASSERT_GT(evicts, 0u) << "tail holds no kEvict frame";
  ASSERT_EQ(evicts, replaces) << "unpaired evict/replace in the tail";
  const std::size_t tail_begin = frame_start[depart_idx];

  // Reference: a plain Dispatcher replaying the first `k` records.
  const auto record_prefix_hash = [&](std::size_t k) {
    PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
    Dispatcher reference(inst.dim(), *policy);
    for (std::size_t i = 0; i < k; ++i) {
      const persist::JournalRecord& rec = scan.records[i];
      switch (rec.kind) {
        case persist::OpKind::kArrive:
          reference.arrive(rec.time, rec.size, rec.expected_departure);
          break;
        case persist::OpKind::kDepart:
          reference.depart(rec.time, rec.job);
          break;
        case persist::OpKind::kAdvance:
          break;  // never issued by this run
        case persist::OpKind::kEvict:
          reference.evict(rec.time, rec.job);
          break;
        case persist::OpKind::kReplace:
          reference.replace(rec.time, rec.job,
                            rec.new_bin ? kNoBin : rec.bin);
          break;
      }
    }
    return dispatcher_state_hash(reference);
  };

  const std::string seg_name = fs::path(segments[0]).filename().string();
  const auto check_recovery = [&](const fs::path& dir, std::size_t k,
                                  bool torn, const std::string& what) {
    PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
    persist::DurableOptions opts;
    opts.dir = dir.string();
    opts.fsync = FsyncPolicy::kNone;
    persist::DurableDispatcher recovered(inst.dim(), *policy, opts);
    EXPECT_EQ(recovered.recovery().last_seq, k) << what;
    EXPECT_EQ(recovered.recovery().torn_tail, torn) << what;
    EXPECT_EQ(dispatcher_state_hash(recovered.dispatcher()),
              record_prefix_hash(k))
        << what << ": recovered state != journal-record prefix replay";
    PackingInvariantChecker checker;
    const auto err = checker.check(recovered.dispatcher());
    EXPECT_FALSE(err.has_value()) << what << ": " << *err;
  };

  // Untampered recovery first: bit-exact with the live run.
  {
    TempDir trial("mig_full");
    fs::create_directories(trial.str());
    std::ofstream out(trial.path / seg_name, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
    persist::DurableOptions opts;
    opts.dir = trial.str();
    opts.fsync = FsyncPolicy::kNone;
    persist::DurableDispatcher recovered(inst.dim(), *policy, opts);
    ASSERT_EQ(recovered.recovery().last_seq, ops_issued);
    ASSERT_EQ(dispatcher_state_hash(recovered.dispatcher()), live_hash)
        << "clean recovery diverged from the uninterrupted run";
  }

  for (std::size_t off = tail_begin; off < bytes.size(); ++off) {
    // Which frame contains `off`, and how many complete frames precede it.
    std::size_t containing = 0;
    while (frame_start[containing + 1] <= off) ++containing;
    {
      TempDir trial("mig_trunc");
      fs::create_directories(trial.str());
      std::ofstream out(trial.path / seg_name, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(off));
      out.close();
      check_recovery(trial.path, containing,
                     /*torn=*/off != frame_start[containing],
                     "truncate@" + std::to_string(off));
    }
    {
      TempDir trial("mig_flip");
      fs::create_directories(trial.str());
      std::vector<char> mutated = bytes;
      mutated[off] = static_cast<char>(mutated[off] ^ 0x5A);
      std::ofstream out(trial.path / seg_name, std::ios::binary);
      out.write(mutated.data(),
                static_cast<std::streamsize>(mutated.size()));
      out.close();
      check_recovery(trial.path, containing, /*torn=*/true,
                     "flip@" + std::to_string(off));
    }
  }
}

// Tenant-credit tail fuzz: a durable, tenant-labeled run settles credits
// every 40 ops through settle_credits(), so the journal interleaves
// kTenantCredits frames with labeled kArrive frames and ENDS on one.
// Truncate and flip-corrupt EVERY byte offset of the tail region spanning
// the final settlement cycle (labeled ops + the last credit frame):
// recovery must rebuild the dispatcher AND the per-tenant usage ledgers
// from the surviving op prefix, and recovery().tenant_credits must be
// byte-identical to the newest credit blob that survived that prefix --
// restorable into a fresh Arbiter that serializes right back to it.
TEST(CrashFuzz, TenantCreditTailEveryByteOffsetTruncateAndCorrupt) {
  constexpr std::uint32_t kTenants = 4;
  constexpr std::size_t kSettleEvery = 40;
  Instance inst = fuzz_instance();
  gen::label_tenants_uniform(inst, kTenants, /*seed=*/0xFEEDu);
  const std::vector<Event> events = build_event_stream(inst);

  tenancy::ArbiterConfig aconfig;
  aconfig.num_tenants = kTenants;
  aconfig.init_credits = 2.0;
  aconfig.alpha = 0.25;
  // capacity_units stays infinite: the gate is fuzzed elsewhere; what is
  // under test here is the durability of the settled credit state.

  TempDir base("credits_base");
  std::vector<std::vector<std::uint8_t>> blobs;  // journaled, in order
  std::uint64_t live_hash = 0;
  {
    PolicyPtr policy = make_policy("BestFit", kPolicySeed);
    tenancy::UsageAccountant accountant(kTenants);
    tenancy::Arbiter arbiter(aconfig);
    persist::DurableOptions opts;
    opts.dir = base.str();
    opts.fsync = FsyncPolicy::kNone;
    opts.usage_hook = &accountant;
    persist::DurableDispatcher durable(inst.dim(), *policy, opts);
    std::size_t ops = 0;
    for (const Event& ev : events) {
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        durable.arrive(item.arrival, item.size, item.departure,
                       item.tenant);
      } else {
        durable.depart(ev.time, item.id);
      }
      if (++ops % kSettleEvery == 0 && ops < events.size()) {
        arbiter.settle(ev.time, accountant.cut_epoch());
        durable.settle_credits(ev.time, arbiter.state_bytes());
        blobs.push_back(arbiter.state_bytes());
      }
    }
    // End the journal ON a settlement, so the tail frame is kTenantCredits.
    arbiter.settle(events.back().time, accountant.cut_epoch());
    durable.settle_credits(events.back().time, arbiter.state_bytes());
    blobs.push_back(arbiter.state_bytes());
    live_hash = dispatcher_state_hash(durable.dispatcher());
  }
  ASSERT_GE(blobs.size(), 3u);

  const auto segments = persist::journal_segments(base.str());
  ASSERT_EQ(segments.size(), 1u);
  std::ifstream in(segments[0], std::ios::binary);
  const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  const persist::JournalScan scan = persist::scan_journal(base.str());
  ASSERT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), events.size() + blobs.size());

  // Byte offset where each frame starts; frame_start.back() == EOF.
  std::vector<std::size_t> frame_start;
  {
    std::vector<std::uint8_t> buf;
    for (const persist::JournalRecord& rec : scan.records) {
      frame_start.push_back(buf.size());
      persist::encode_frame(rec, buf);
    }
    frame_start.push_back(buf.size());
    ASSERT_EQ(buf.size(), bytes.size());
  }

  // Locate the credit frames; the journaled blobs must round out on disk
  // exactly as settled, and the journal must end on one.
  std::vector<std::size_t> credit_idx;
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    if (scan.records[i].kind == persist::OpKind::kTenantCredits) {
      credit_idx.push_back(i);
    }
  }
  ASSERT_EQ(credit_idx.size(), blobs.size());
  for (std::size_t k = 0; k < blobs.size(); ++k) {
    ASSERT_EQ(scan.records[credit_idx[k]].blob, blobs[k]) << "frame " << k;
  }
  ASSERT_EQ(credit_idx.back(), scan.records.size() - 1);

  // Recovery check against a reference replay of the first `k` records:
  // dispatcher hash, recovered usage ledgers (a fresh accountant installed
  // before replay re-accrues them), and the newest surviving credit blob.
  const auto check = [&](const fs::path& dir, std::size_t k, bool torn,
                         const std::string& what) {
    PolicyPtr policy = make_policy("BestFit", kPolicySeed);
    tenancy::UsageAccountant recovered_acc(kTenants);
    persist::DurableOptions opts;
    opts.dir = dir.string();
    opts.fsync = FsyncPolicy::kNone;
    opts.usage_hook = &recovered_acc;
    persist::DurableDispatcher recovered(inst.dim(), *policy, opts);
    EXPECT_EQ(recovered.recovery().last_seq, k) << what;
    EXPECT_EQ(recovered.recovery().torn_tail, torn) << what;

    PolicyPtr ref_policy = make_policy("BestFit", kPolicySeed);
    Dispatcher reference(inst.dim(), *ref_policy);
    tenancy::UsageAccountant ref_acc(kTenants);
    reference.set_usage_hook(&ref_acc);
    std::vector<std::uint8_t> expect_blob;
    for (std::size_t i = 0; i < k; ++i) {
      const persist::JournalRecord& rec = scan.records[i];
      switch (rec.kind) {
        case persist::OpKind::kArrive:
          reference.arrive(rec.time, rec.size, rec.expected_departure,
                           rec.tenant);
          break;
        case persist::OpKind::kDepart:
          reference.depart(rec.time, rec.job);
          break;
        case persist::OpKind::kTenantCredits:
          expect_blob = rec.blob;
          break;
        default:
          break;
      }
    }
    EXPECT_EQ(dispatcher_state_hash(recovered.dispatcher()),
              dispatcher_state_hash(reference))
        << what << ": recovered state != journal-record prefix replay";
    EXPECT_EQ(recovered.recovery().tenant_credits, expect_blob)
        << what << ": wrong surviving credit blob";
    for (std::uint32_t t = 0; t < kTenants; ++t) {
      // Same hook code replaying the same op sequence: bit-exact.
      EXPECT_EQ(recovered_acc.demand_integral(t), ref_acc.demand_integral(t))
          << what << " tenant " << t;
      EXPECT_EQ(recovered_acc.active_demand(t), ref_acc.active_demand(t))
          << what << " tenant " << t;
    }
    if (!expect_blob.empty()) {
      tenancy::Arbiter restored(aconfig);
      serial::Reader blob_in(expect_blob);
      restored.restore_state(blob_in);
      EXPECT_EQ(restored.state_bytes(), expect_blob)
          << what << ": credit blob does not round-trip through Arbiter";
    }
  };

  const std::string seg_name = fs::path(segments[0]).filename().string();
  const auto write_prefix = [&](const fs::path& dir,
                                const std::vector<char>& data,
                                std::size_t len) {
    fs::create_directories(dir);
    std::ofstream out(dir / seg_name, std::ios::binary);
    out.write(data.data(), static_cast<std::streamsize>(len));
  };

  // Untampered recovery first: bit-exact with the live run, newest blob.
  {
    TempDir trial("cred_full");
    write_prefix(trial.path, bytes, bytes.size());
    PolicyPtr policy = make_policy("BestFit", kPolicySeed);
    persist::DurableOptions opts;
    opts.dir = trial.str();
    opts.fsync = FsyncPolicy::kNone;
    persist::DurableDispatcher recovered(inst.dim(), *policy, opts);
    ASSERT_EQ(recovered.recovery().last_seq, scan.records.size());
    ASSERT_EQ(dispatcher_state_hash(recovered.dispatcher()), live_hash);
    ASSERT_EQ(recovered.recovery().tenant_credits, blobs.back());
  }
  // Chopping off every credit frame leaves tenant_credits empty.
  {
    TempDir trial("cred_none");
    write_prefix(trial.path, bytes, frame_start[credit_idx.front()]);
    check(trial.path, credit_idx.front(), /*torn=*/false, "pre-credit cut");
  }

  // The fuzz region: a few labeled op frames before the last credit frame,
  // plus every byte of the credit frame itself. Prefixes inside the region
  // surface the SECOND-newest blob; only full survival surfaces the last.
  const std::size_t tail_begin = frame_start[credit_idx.back() - 4];
  for (std::size_t off = tail_begin; off < bytes.size(); ++off) {
    std::size_t containing = 0;
    while (frame_start[containing + 1] <= off) ++containing;
    {
      TempDir trial("cred_trunc");
      write_prefix(trial.path, bytes, off);
      check(trial.path, containing,
            /*torn=*/off != frame_start[containing],
            "truncate@" + std::to_string(off));
    }
    {
      TempDir trial("cred_flip");
      std::vector<char> mutated = bytes;
      mutated[off] = static_cast<char>(mutated[off] ^ 0x5A);
      write_prefix(trial.path, mutated, mutated.size());
      check(trial.path, containing, /*torn=*/true,
            "flip@" + std::to_string(off));
    }
  }
}

// Interval mode runs a background flusher thread alongside the committing
// thread; drive it hard (fsync every 4 ops, so the flusher is almost
// always in flight), abandon the writer mid-class like a crash, and make
// sure recovery still sees every committed frame. This is the TSan
// coverage for the commit()/flusher/sync() interplay.
TEST(CrashFuzz, BackgroundFlusherKeepsEveryCommittedFrame) {
  const Instance inst = fuzz_instance();
  const std::vector<Event> events = build_event_stream(inst);
  TempDir dir("flusher");
  {
    PolicyPtr policy = make_policy("MoveToFront", kPolicySeed);
    persist::DurableOptions opts;
    opts.dir = dir.str();
    opts.fsync = FsyncPolicy::kInterval;
    opts.fsync_interval_ops = 4;
    opts.checkpoint_every = 64;  // checkpoint path exercises sync() drains
    persist::DurableDispatcher durable(inst.dim(), *policy, opts);
    for (const Event& ev : events) {
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        durable.arrive(item.arrival, item.size, item.departure);
      } else {
        durable.depart(ev.time, item.id);
      }
    }
    // Abandoned without flush(): the destructor only joins the flusher.
  }
  expect_prefix_recovery("MoveToFront", inst, events, dir.str(),
                         events.size(), /*expect_torn=*/false,
                         "interval-flusher run");
}

// Sharded crash: a K=4 rendezvous-routed service is killed mid-drain by a
// commit fault on whichever shard reaches it first. Recovery rebuilds
// each shard independently; every shard must match a serial Dispatcher
// fed exactly the prefix of its substream that survived in its journal.
TEST(CrashFuzz, ShardedKilledMidDrainRecoversShardByShard) {
  constexpr std::size_t kShards = 4;
  gen::UniformParams params;
  params.d = 2;
  params.n = 600;
  params.mu = 12;
  params.span = 120;
  params.bin_size = 9;
  const Instance inst = gen::uniform_instance(params, 0x5A4D);
  const std::vector<Event> events = build_event_stream(inst);

  // The rendezvous router is a pure function of (job id, shard), and the
  // single-producer feed assigns job ids in arrival order, so the test
  // can reconstruct every shard's substream exactly.
  std::vector<JobId> job_of_item(inst.size(), kNoItem);
  {
    JobId next = 0;
    for (const Event& ev : events) {
      if (ev.kind == EventKind::kArrival) job_of_item[ev.item] = next++;
    }
  }
  auto shard_of = [&](JobId job) {
    std::size_t best = 0;
    std::uint64_t best_score = cloud::rendezvous_score(job, 0);
    for (std::size_t s = 1; s < kShards; ++s) {
      const std::uint64_t score = cloud::rendezvous_score(job, s);
      if (score > best_score) {
        best = s;
        best_score = score;
      }
    }
    return best;
  };

  TempDir dir("sharded");
  cloud::ShardedOptions options;
  options.shards = kShards;
  options.router = cloud::RouterKind::kRendezvous;
  options.journal_dir = dir.str();
  options.fsync = FsyncPolicy::kNone;
  options.checkpoint_every = 64;
  const auto factory = [](std::size_t) {
    return make_policy("MoveToFront", kPolicySeed);
  };

  // Kill one shard's journal mid-run: the 5th batch commit that gets as
  // far as writing its bytes dies before returning (torn-tail case is
  // exercised per-byte by the serial fuzz; here the batch boundary is the
  // interesting sharded behavior). Batch commits are few -- workers drain
  // their whole backlog per wakeup -- so the countdown is small.
  {
    std::mutex fault_mu;
    int countdown = 5;
    persist::set_fault_hook([&](std::string_view point) {
      if (point != "journal.commit.written") return;
      std::lock_guard<std::mutex> lock(fault_mu);
      if (--countdown == 0) throw persist::FaultInjected(point);
    });
    cloud::ShardedDispatcher service(inst.dim(), factory, options);
    for (const Event& ev : events) {
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        const JobId job =
            service.arrive(item.arrival, item.size, item.departure);
        ASSERT_EQ(job, job_of_item[ev.item]);
      } else {
        service.depart(ev.time, job_of_item[ev.item]);
      }
    }
    EXPECT_THROW(service.drain(), persist::FaultInjected);
    persist::clear_fault_hook();
  }  // destructor joins workers; the poisoned shard stops journaling

  // Recover a fresh service from the same directories.
  cloud::ShardedDispatcher recovered(inst.dim(), factory, options);
  std::uint64_t total_recovered_ops = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    SCOPED_TRACE(s);
    const persist::RecoveryReport& report = recovered.shard_recovery(s);
    total_recovered_ops += report.last_seq;

    // Rebuild shard s's substream (the order its queue received ops) and
    // feed the surviving prefix to a serial replica.
    PolicyPtr policy = make_policy("MoveToFront", kPolicySeed);
    Dispatcher replica(inst.dim(), *policy);
    std::vector<JobId> local_of_global(inst.size(), kNoItem);
    std::uint64_t applied = 0;
    for (const Event& ev : events) {
      if (applied >= report.last_seq) break;
      const JobId job = job_of_item[ev.item];
      if (shard_of(job) != s) continue;
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        local_of_global[job] =
            static_cast<JobId>(replica.jobs_admitted());
        replica.arrive(item.arrival, item.size, item.departure);
      } else {
        replica.depart(ev.time, local_of_global[job]);
      }
      ++applied;
    }
    ASSERT_EQ(applied, report.last_seq);
    EXPECT_EQ(recovered.shard_jobs_admitted(s), replica.jobs_admitted());
    EXPECT_EQ(packing_hash(recovered.shard_packing(s)),
              packing_hash([&] {
                std::vector<BinId> assignment(replica.jobs_admitted(),
                                              kNoBin);
                for (const BinRecord& rec : replica.records()) {
                  for (ItemId it : rec.items) assignment[it] = rec.id;
                }
                return Packing(std::move(assignment), replica.records());
              }()))
        << "shard " << s << " diverged from its journaled prefix";
  }
  // Exactly one shard lost its tail; the others recovered every op they
  // were fed. With the fault at commit.written, the dying batch's frames
  // are on disk, so at most the post-fault batches are missing.
  EXPECT_GT(total_recovered_ops, 0u);
  EXPECT_LT(total_recovered_ops, events.size() + 1);

  // The recovered service is live: it accepts new traffic and drains.
  const Time resume = events.back().time + 1.0;
  RVec size(inst.dim());
  for (std::size_t j = 0; j < size.dim(); ++j) size[j] = 0.3;
  const JobId job = recovered.arrive(resume, size, resume + 5.0);
  recovered.depart(resume + 2.0, job);
  recovered.drain();
}

}  // namespace
}  // namespace dvbp
