// Behavioral tests for each Any Fit policy: given hand-built bin
// configurations, each algorithm must pick exactly the bin its definition
// (paper Sec. 2.2 / Sec. 7) prescribes.
#include <gtest/gtest.h>

#include "core/policies/best_fit.hpp"
#include "core/policies/first_fit.hpp"
#include "core/policies/last_fit.hpp"
#include "core/policies/move_to_front.hpp"
#include "core/policies/next_fit.hpp"
#include "core/policies/random_fit.hpp"
#include "core/policies/registry.hpp"
#include "core/policies/worst_fit.hpp"
#include "core/simulator.hpp"

namespace dvbp {
namespace {

// Two bins: B0 holds 0.6, B1 holds 0.5 (opened later); a probe of size 0.3
// fits both. Policies must disagree exactly as designed.
Instance two_bin_probe() {
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.6});  // -> B0
  inst.add(0.0, 10.0, RVec{0.5});  // does not fit B0 -> B1
  inst.add(1.0, 2.0, RVec{0.3});   // probe: fits both
  return inst;
}

TEST(FirstFit, PicksEarliestOpenedBin) {
  const auto result = simulate(two_bin_probe(), "FirstFit");
  EXPECT_EQ(result.packing.bin_of(2), 0u);
  EXPECT_EQ(result.bins_opened, 2u);
}

TEST(LastFit, PicksLatestOpenedBin) {
  const auto result = simulate(two_bin_probe(), "LastFit");
  EXPECT_EQ(result.packing.bin_of(2), 1u);
}

TEST(BestFit, PicksMostLoadedBin) {
  const auto result = simulate(two_bin_probe(), "BestFit");
  EXPECT_EQ(result.packing.bin_of(2), 0u);  // 0.6 > 0.5
}

TEST(WorstFit, PicksLeastLoadedBin) {
  const auto result = simulate(two_bin_probe(), "WorstFit");
  EXPECT_EQ(result.packing.bin_of(2), 1u);  // 0.5 < 0.6
}

TEST(MoveToFront, PicksMostRecentlyUsedBin) {
  // B1 was used (opened) last, so it leads the MRU list.
  const auto result = simulate(two_bin_probe(), "MoveToFront");
  EXPECT_EQ(result.packing.bin_of(2), 1u);
}

TEST(AnyFit, NeverOpensBinWhenOneFits) {
  // All full-list Any Fit policies must pack the probe in an open bin.
  for (const char* name : {"FirstFit", "LastFit", "BestFit", "WorstFit",
                           "MoveToFront", "RandomFit"}) {
    const auto result = simulate(two_bin_probe(), name);
    EXPECT_EQ(result.bins_opened, 2u) << name;
  }
}

TEST(BestFit, LoadMeasureChangesDecision) {
  // B0 = (0.8, 0.1): Linf 0.8, L1 0.9. B1 = (0.5, 0.5): Linf 0.5, L1 1.0.
  Instance inst(2);
  inst.add(0.0, 10.0, RVec{0.8, 0.1});
  inst.add(0.0, 10.0, RVec{0.5, 0.5});
  inst.add(1.0, 2.0, RVec{0.1, 0.1});  // probe
  EXPECT_EQ(simulate(inst, "BestFit").packing.bin_of(2), 0u);
  EXPECT_EQ(simulate(inst, "BestFit:L1").packing.bin_of(2), 1u);
  // L2: ||(0.8,0.1)|| ~ 0.806 > ||(0.5,0.5)|| ~ 0.707.
  EXPECT_EQ(simulate(inst, "BestFit:L2").packing.bin_of(2), 0u);
}

TEST(WorstFit, LoadMeasureChangesDecision) {
  Instance inst(2);
  inst.add(0.0, 10.0, RVec{0.8, 0.1});
  inst.add(0.0, 10.0, RVec{0.5, 0.5});
  inst.add(1.0, 2.0, RVec{0.1, 0.1});
  EXPECT_EQ(simulate(inst, "WorstFit").packing.bin_of(2), 1u);
  EXPECT_EQ(simulate(inst, "WorstFit:L1").packing.bin_of(2), 0u);
}

TEST(BestFit, TieBreaksTowardEarliestBin) {
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.6});
  inst.add(0.0, 10.0, RVec{0.6});
  inst.add(1.0, 2.0, RVec{0.2});
  EXPECT_EQ(simulate(inst, "BestFit").packing.bin_of(2), 0u);
}

TEST(NextFit, ReleasedBinNeverReceivesItems) {
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.6});  // B0, current
  inst.add(0.0, 10.0, RVec{0.5});  // releases B0, opens B1
  inst.add(1.0, 2.0, RVec{0.3});   // fits B1 -> B1 (B0 also fits but released)
  inst.add(1.5, 2.0, RVec{0.3});   // B1 now 0.8 -> would overflow; opens B2
  const auto result = simulate(inst, "NextFit");
  EXPECT_EQ(result.packing.bin_of(2), 1u);
  EXPECT_EQ(result.packing.bin_of(3), 2u);
  EXPECT_EQ(result.bins_opened, 3u);
}

TEST(NextFit, ReleaseLogRecordsReleases) {
  NextFitPolicy policy;
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.6});
  inst.add(0.0, 10.0, RVec{0.6});
  inst.add(0.0, 10.0, RVec{0.6});
  simulate(inst, policy);
  ASSERT_EQ(policy.release_log().size(), 2u);
  EXPECT_EQ(policy.release_log()[0],
            (NextFitPolicy::Release{0u, 0.0, 1u}));
  EXPECT_EQ(policy.release_log()[1],
            (NextFitPolicy::Release{1u, 0.0, 2u}));
}

TEST(NextFit, CurrentBinResetWhenItCloses) {
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.6});  // B0 closes at 1
  inst.add(2.0, 3.0, RVec{0.6});  // must open B1
  const auto result = simulate(inst, "NextFit");
  EXPECT_EQ(result.bins_opened, 2u);
  EXPECT_EQ(result.packing.bin_of(1), 1u);
}

TEST(MoveToFront, MruOrderTracksUsage) {
  MoveToFrontPolicy policy(/*record_leader_history=*/true);
  Instance inst(1);
  inst.add(0.0, 10.0, RVec{0.6});   // B0
  inst.add(0.0, 10.0, RVec{0.55});  // B1 (front)
  inst.add(1.0, 9.0, RVec{0.4});    // fits B1 (0.95) -> B1 stays front
  inst.add(2.0, 9.0, RVec{0.3});    // only B0 fits -> B0 moves to front
  simulate(inst, policy);
  // All items still active at the end of arrivals; policy state lingers
  // only during the run, so check the recorded history instead.
  const auto& history = policy.leader_history();
  ASSERT_GE(history.size(), 2u);
  // Same-instant leader flips collapse, so after the t=0 arrivals B1 leads;
  // the pack into B0 at t=2 makes B0 the leader, caused by item 3.
  EXPECT_EQ(history.front(),
            (MoveToFrontPolicy::LeaderChange{0.0, 1u, 1u}));
  EXPECT_EQ(history[1], (MoveToFrontPolicy::LeaderChange{2.0, 0u, 3u}));
  EXPECT_EQ(history.back().leader, kNoBin);  // everything closed at the end
}

TEST(MoveToFront, LeaderHistoryCoversSpanWithoutGaps) {
  MoveToFrontPolicy policy(true);
  Instance inst(1);
  inst.add(0.0, 2.0, RVec{0.6});
  inst.add(1.0, 4.0, RVec{0.7});
  inst.add(3.0, 5.0, RVec{0.5});
  simulate(inst, policy);
  const auto& h = policy.leader_history();
  ASSERT_GE(h.size(), 2u);
  // Strictly increasing timestamps, alternating leaders, no consecutive
  // duplicates.
  for (std::size_t i = 0; i + 1 < h.size(); ++i) {
    EXPECT_LE(h[i].time, h[i + 1].time);
    EXPECT_NE(h[i].leader, h[i + 1].leader);
  }
  EXPECT_EQ(h.back().leader, kNoBin);
}

TEST(RandomFit, DeterministicUnderSeed) {
  Instance inst(1);
  for (int i = 0; i < 40; ++i) {
    inst.add(static_cast<Time>(i % 7), static_cast<Time>(i % 7 + 3),
             RVec{0.2 + 0.05 * (i % 5)});
  }
  const auto a = simulate(inst, "RandomFit", {}, /*policy_seed=*/99);
  const auto b = simulate(inst, "RandomFit", {}, /*policy_seed=*/99);
  EXPECT_EQ(a.packing.assignment(), b.packing.assignment());
}

TEST(RandomFit, SeedChangesDecisions) {
  Instance inst(1);
  for (int i = 0; i < 60; ++i) {
    inst.add(0.0, 10.0, RVec{0.05});
  }
  // Force several open bins first.
  Instance forced(1);
  forced.add(0.0, 10.0, RVec{0.6});
  forced.add(0.0, 10.0, RVec{0.6});
  forced.add(0.0, 10.0, RVec{0.6});
  for (int i = 0; i < 30; ++i) forced.add(1.0, 9.0, RVec{0.01});
  const auto a = simulate(forced, "RandomFit", {}, 1);
  const auto b = simulate(forced, "RandomFit", {}, 2);
  EXPECT_NE(a.packing.assignment(), b.packing.assignment());
}

TEST(Registry, ConstructsEveryStandardPolicy) {
  for (const std::string& name : standard_policy_names()) {
    PolicyPtr p = make_policy(name);
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(p->is_clairvoyant()) << name;
  }
}

TEST(Registry, ParameterizedNames) {
  EXPECT_EQ(make_policy("BestFit:L2")->name(), "BestFit[L2]");
  EXPECT_EQ(make_policy("WorstFit:L1")->name(), "WorstFit[L1]");
  EXPECT_TRUE(make_policy("MinExtensionFit")->is_clairvoyant());
  EXPECT_TRUE(make_policy("NoisyMinExtensionFit:0.5")->is_clairvoyant());
}

TEST(Registry, RejectsUnknownNames) {
  EXPECT_THROW(make_policy("BogoFit"), std::invalid_argument);
  EXPECT_THROW(make_policy(""), std::invalid_argument);
}

TEST(Registry, StandardPoliciesMatchSection7) {
  const auto names = standard_policy_names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "MoveToFront");
  const auto policies = make_standard_policies();
  ASSERT_EQ(policies.size(), 7u);
}

TEST(LoadMeasure, NamesAndValues) {
  RVec v{0.3, 0.4};
  EXPECT_DOUBLE_EQ(measure_load(v, LoadMeasure::kLinf), 0.4);
  EXPECT_DOUBLE_EQ(measure_load(v, LoadMeasure::kL1), 0.7);
  EXPECT_DOUBLE_EQ(measure_load(v, LoadMeasure::kL2), 0.5);
  EXPECT_EQ(load_measure_name(LoadMeasure::kLinf), "Linf");
  EXPECT_EQ(load_measure_name(LoadMeasure::kL1), "L1");
  EXPECT_EQ(load_measure_name(LoadMeasure::kL2), "L2");
}

}  // namespace
}  // namespace dvbp
