// Sharded-service parity suite: the ShardedDispatcher's packing semantics
// pinned against the serial engines.
//
//  * K = 1 (any router): the merged snapshot must reproduce the serial
//    engine bin-for-bin -- verified against the same pre-refactor FNV-1a
//    hashes test_golden_packings.cpp pins, for all ten registered policies.
//  * K > 1: each shard's packing must equal a serial Dispatcher fed that
//    shard's substream in admission order, and the global cost must equal
//    the sum of the per-shard costs at every probe timestamp.
//
// Everything here drives the service from one producer thread, so queue
// clamping never fires and the comparison is exact (concurrency is
// exercised by test_sharded_stress.cpp instead).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/packing.hpp"
#include "core/policies/registry.hpp"
#include "gen/adversarial.hpp"
#include "gen/uniform.hpp"

namespace dvbp {
namespace {

constexpr std::uint64_t kPolicySeed = 0xD1CEu;

const char* const kPolicies[] = {
    "MoveToFront", "FirstFit",        "BestFit",     "NextFit",
    "LastFit",     "RandomFit",       "WorstFit",    "MinExtensionFit",
    "HarmonicFit", "DurationClassFit"};

// Same workload set test_golden_packings.cpp hashes were recorded on.
std::vector<std::pair<std::string, Instance>> golden_workloads() {
  std::vector<std::pair<std::string, Instance>> out;
  for (std::size_t d : {1u, 2u, 5u}) {
    gen::UniformParams params;
    params.d = d;
    params.n = 400;
    params.mu = 12;
    params.span = 100;
    params.bin_size = 9;
    out.emplace_back("uniform_d" + std::to_string(d),
                     gen::uniform_instance(params, 0xA11CE + d));
  }
  out.emplace_back("adv_anyfit",
                   gen::anyfit_lower_bound(/*k=*/6, /*d=*/2, /*mu=*/5.0)
                       .instance);
  out.emplace_back("adv_nextfit",
                   gen::nextfit_lower_bound(/*k=*/6, /*d=*/2, /*mu=*/4.0)
                       .instance);
  out.emplace_back("adv_mtf", gen::mtf_lower_bound(/*n=*/8, /*mu=*/6.0)
                                  .instance);
  out.emplace_back("adv_bestfit", gen::bestfit_unbounded(/*k=*/10).instance);
  return out;
}

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
}

std::uint64_t packing_hash(const Packing& p) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (BinId b : p.assignment()) fnv(h, b);
  for (const BinRecord& rec : p.bins()) {
    fnv(h, rec.id);
    fnv(h, std::bit_cast<std::uint64_t>(rec.opened));
    fnv(h, std::bit_cast<std::uint64_t>(rec.closed));
    for (ItemId r : rec.items) fnv(h, r);
  }
  return h;
}

struct GoldenEntry {
  const char* workload;
  const char* policy;
  std::uint64_t hash;
};

const GoldenEntry kGolden[] = {
#include "golden_packings.inc"
};

std::uint64_t expected_hash(const std::string& workload,
                            const std::string& policy) {
  for (const GoldenEntry& e : kGolden) {
    if (workload == e.workload && policy == e.policy) return e.hash;
  }
  ADD_FAILURE() << "no golden entry for " << workload << "/" << policy;
  return 0;
}

/// Feeds the instance's full event stream from this (single) thread and
/// blocks until every op is applied. Global job ids equal item ids because
/// arrivals are admitted in instance order.
void feed_and_drain(cloud::ShardedDispatcher& service, const Instance& inst,
                    const std::vector<Event>& events) {
  for (const Event& ev : events) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      const JobId job = service.arrive(item.arrival, item.size,
                                       item.departure);
      ASSERT_EQ(job, item.id);
    } else {
      service.depart(ev.time, item.id);
    }
  }
  service.drain();
}

cloud::ShardedDispatcher::PolicyFactory factory_for(
    const std::string& policy_name) {
  return [policy_name](std::size_t) {
    return make_policy(policy_name, kPolicySeed);
  };
}

void expect_same_packing(const Packing& got, const Packing& want,
                         const std::string& context) {
  ASSERT_EQ(got.assignment(), want.assignment()) << context;
  ASSERT_EQ(got.num_bins(), want.num_bins()) << context;
  for (std::size_t b = 0; b < want.num_bins(); ++b) {
    const BinRecord& x = got.bins()[b];
    const BinRecord& y = want.bins()[b];
    EXPECT_EQ(x.id, y.id) << context << " bin " << b;
    EXPECT_DOUBLE_EQ(x.opened, y.opened) << context << " bin " << b;
    EXPECT_DOUBLE_EQ(x.closed, y.closed) << context << " bin " << b;
    EXPECT_EQ(x.items, y.items) << context << " bin " << b;
  }
}

TEST(ShardedParity, SingleShardMatchesGoldenHashesForAllPolicies) {
  for (const auto& [name, inst] : golden_workloads()) {
    const auto events = build_event_stream(inst);
    for (const char* policy_name : kPolicies) {
      cloud::ShardedOptions options;
      options.shards = 1;
      options.router = cloud::RouterKind::kRoundRobin;
      cloud::ShardedDispatcher service(inst.dim(), factory_for(policy_name),
                                       options);
      feed_and_drain(service, inst, events);
      EXPECT_EQ(packing_hash(service.snapshot()),
                expected_hash(name, policy_name))
          << name << "/" << policy_name
          << ": K=1 sharded packing diverged from the serial engine";
      EXPECT_EQ(service.open_bins(), 0u) << name << "/" << policy_name;
    }
  }
}

TEST(ShardedParity, SingleShardRouterChoiceIsIrrelevant) {
  // With one shard every router degenerates to shard 0; the contract says
  // the packing is router-independent at K = 1.
  const auto workloads = golden_workloads();
  const auto& [name, inst] = workloads[1];  // uniform_d2
  const auto events = build_event_stream(inst);
  for (const cloud::RouterKind kind :
       {cloud::RouterKind::kRoundRobin, cloud::RouterKind::kRendezvous,
        cloud::RouterKind::kLeastUsage}) {
    cloud::ShardedOptions options;
    options.shards = 1;
    options.router = kind;
    cloud::ShardedDispatcher service(inst.dim(), factory_for("MoveToFront"),
                                     options);
    feed_and_drain(service, inst, events);
    EXPECT_EQ(packing_hash(service.snapshot()),
              expected_hash(name, "MoveToFront"))
        << name << " with router " << cloud::router_name(kind);
  }
}

TEST(ShardedParity, PerShardPackingMatchesSerialSubsequence) {
  const auto workloads = golden_workloads();
  const char* const policies[] = {"MoveToFront", "FirstFit", "NextFit",
                                  "DurationClassFit"};
  for (std::size_t w : {1u, 4u}) {  // uniform_d2, adv_nextfit
    const auto& [name, inst] = workloads[w];
    const auto events = build_event_stream(inst);
    for (const cloud::RouterKind kind :
         {cloud::RouterKind::kRoundRobin, cloud::RouterKind::kRendezvous}) {
      for (const char* policy_name : policies) {
        constexpr std::size_t kShards = 3;
        cloud::ShardedOptions options;
        options.shards = kShards;
        options.router = kind;
        options.max_batch = 17;  // odd batch size: exercises re-batching
        cloud::ShardedDispatcher service(inst.dim(),
                                         factory_for(policy_name), options);
        feed_and_drain(service, inst, events);

        for (std::size_t s = 0; s < kShards; ++s) {
          // Serial replay of shard s's substream, in admission order.
          PolicyPtr serial_policy = make_policy(policy_name, kPolicySeed);
          Dispatcher serial(inst.dim(), *serial_policy);
          std::vector<JobId> local_of_global(inst.size(), kNoItem);
          for (const Event& ev : events) {
            const Item& item = inst[ev.item];
            if (service.shard_of(item.id) != s) continue;
            if (ev.kind == EventKind::kArrival) {
              local_of_global[item.id] = static_cast<JobId>(
                  serial.jobs_admitted());
              serial.arrive(item.arrival, item.size, item.departure);
            } else {
              serial.depart(ev.time, local_of_global[item.id]);
            }
          }
          std::vector<BinId> serial_assignment(serial.jobs_admitted(),
                                               kNoBin);
          for (const BinRecord& rec : serial.records()) {
            for (ItemId it : rec.items) serial_assignment[it] = rec.id;
          }
          const Packing want(std::move(serial_assignment), serial.records());
          expect_same_packing(
              service.shard_packing(s), want,
              name + "/" + policy_name + "/" +
                  std::string(cloud::router_name(kind)) + " shard " +
                  std::to_string(s));
          // Local -> global job mapping is the substream admission order.
          for (JobId g = 0; g < inst.size(); ++g) {
            if (local_of_global[g] == kNoItem) continue;
            EXPECT_EQ(service.global_job(s, local_of_global[g]), g);
          }
        }
      }
    }
  }
}

TEST(ShardedParity, GlobalCostIsSumOfShardCostsAtEveryProbe) {
  const auto workloads = golden_workloads();
  const auto& [name, inst] = workloads[1];  // uniform_d2
  const auto events = build_event_stream(inst);
  constexpr std::size_t kShards = 4;

  cloud::ShardedOptions options;
  options.shards = kShards;
  options.router = cloud::RouterKind::kRendezvous;
  cloud::ShardedDispatcher service(inst.dim(), factory_for("MoveToFront"),
                                   options);
  feed_and_drain(service, inst, events);

  // Independent serial replays of each shard's substream.
  std::vector<std::unique_ptr<Dispatcher>> serial;
  std::vector<PolicyPtr> serial_policies;
  std::vector<JobId> local_of_global(inst.size(), kNoItem);
  for (std::size_t s = 0; s < kShards; ++s) {
    serial_policies.push_back(make_policy("MoveToFront", kPolicySeed));
    serial.push_back(
        std::make_unique<Dispatcher>(inst.dim(), *serial_policies.back()));
  }
  for (const Event& ev : events) {
    const Item& item = inst[ev.item];
    const std::size_t s = service.shard_of(item.id);
    if (ev.kind == EventKind::kArrival) {
      local_of_global[item.id] =
          static_cast<JobId>(serial[s]->jobs_admitted());
      serial[s]->arrive(item.arrival, item.size, item.departure);
    } else {
      serial[s]->depart(ev.time, local_of_global[item.id]);
    }
  }

  const Time horizon = inst.last_departure();
  for (const Time t : {0.0, 0.25 * horizon, 0.5 * horizon, 0.75 * horizon,
                       horizon, horizon + 10.0}) {
    double shard_sum = 0.0;
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_DOUBLE_EQ(service.shard_cost_so_far(s, t),
                       serial[s]->cost_so_far(t))
          << name << " shard " << s << " at t=" << t;
      shard_sum += serial[s]->cost_so_far(t);
    }
    EXPECT_DOUBLE_EQ(service.cost_so_far(t), shard_sum)
        << name << " at t=" << t;
  }

  std::size_t serial_bins = 0;
  for (const auto& d : serial) serial_bins += d->bins_opened();
  EXPECT_EQ(service.bins_opened(), serial_bins);
  EXPECT_EQ(service.jobs_active(), 0u);
}

TEST(ShardedParity, MergedSnapshotIsConsistentAcrossShards) {
  const auto workloads = golden_workloads();
  const auto& [name, inst] = workloads[2];  // uniform_d5
  (void)name;
  const auto events = build_event_stream(inst);
  constexpr std::size_t kShards = 3;
  cloud::ShardedOptions options;
  options.shards = kShards;
  options.router = cloud::RouterKind::kRoundRobin;
  cloud::ShardedDispatcher service(inst.dim(), factory_for("FirstFit"),
                                   options);
  feed_and_drain(service, inst, events);

  const Packing merged = service.snapshot();
  ASSERT_EQ(merged.assignment().size(), inst.size());
  // Every job lands in exactly one bin that lists it exactly once, and the
  // merged cost equals the service's metered cost.
  std::vector<std::size_t> listed(inst.size(), 0);
  for (const BinRecord& rec : merged.bins()) {
    for (ItemId it : rec.items) {
      ++listed[it];
      EXPECT_EQ(merged.assignment()[it], rec.id);
    }
  }
  for (std::size_t j = 0; j < inst.size(); ++j) {
    EXPECT_EQ(listed[j], 1u) << "job " << j;
  }
  EXPECT_EQ(merged.num_bins(), service.bins_opened());
  EXPECT_DOUBLE_EQ(merged.cost(),
                   service.cost_so_far(inst.last_departure()));
}

}  // namespace
}  // namespace dvbp
