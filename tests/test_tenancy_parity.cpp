// Tenancy-disabled differential suite: threading tenant labels and the
// usage-accounting hook through the engines must never perturb placement.
//
//   * Serial: the live Dispatcher with tenant-labeled arrivals and a
//     UsageAccountant attached must reproduce every golden packing hash
//     (tests/golden_packings.inc) for all ten policies -- placement is
//     tenant-blind by contract.
//   * Sharded, K > 1: a tenant-labeled run (ShardedOptions.tenants > 0,
//     per-shard accountants live) must be bin-for-bin identical to the
//     pre-tenancy configuration (tenants = 0, unlabeled arrivals) on the
//     same feed, and the shard accountants must meter exactly the demand
//     integrals the labels imply.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cloud/router.hpp"
#include "cloud/sharded_dispatcher.hpp"
#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/packing.hpp"
#include "core/policies/registry.hpp"
#include "gen/adversarial.hpp"
#include "gen/tenants.hpp"
#include "gen/uniform.hpp"
#include "packing_hash.hpp"
#include "tenancy/accountant.hpp"

namespace dvbp {
namespace {

constexpr std::uint64_t kPolicySeed = 0xD1CEu;
constexpr std::uint32_t kTenants = 5;

const char* const kPolicies[] = {
    "MoveToFront", "FirstFit",        "BestFit",     "NextFit",
    "LastFit",     "RandomFit",       "WorstFit",    "MinExtensionFit",
    "HarmonicFit", "DurationClassFit"};

std::vector<std::pair<std::string, Instance>> golden_workloads() {
  std::vector<std::pair<std::string, Instance>> out;
  for (std::size_t d : {1u, 2u, 5u, 7u, 8u, 9u, 16u}) {
    gen::UniformParams params;
    params.d = d;
    params.n = 400;
    params.mu = 12;
    params.span = 100;
    params.bin_size = 9;
    out.emplace_back("uniform_d" + std::to_string(d),
                     gen::uniform_instance(params, 0xA11CE + d));
  }
  out.emplace_back("adv_anyfit",
                   gen::anyfit_lower_bound(/*k=*/6, /*d=*/2, /*mu=*/5.0)
                       .instance);
  out.emplace_back("adv_nextfit",
                   gen::nextfit_lower_bound(/*k=*/6, /*d=*/2, /*mu=*/4.0)
                       .instance);
  out.emplace_back("adv_mtf", gen::mtf_lower_bound(/*n=*/8, /*mu=*/6.0)
                                  .instance);
  out.emplace_back("adv_bestfit", gen::bestfit_unbounded(/*k=*/10).instance);
  return out;
}

struct GoldenEntry {
  const char* workload;
  const char* policy;
  std::uint64_t hash;
};

const GoldenEntry kGolden[] = {
#include "golden_packings.inc"
};

std::uint64_t expected_hash(const std::string& workload,
                            const std::string& policy) {
  for (const GoldenEntry& e : kGolden) {
    if (workload == e.workload && policy == e.policy) return e.hash;
  }
  ADD_FAILURE() << "no golden entry for " << workload << "/" << policy;
  return 0;
}

/// Drives the live Dispatcher over the labeled instance with the usage
/// hook attached and returns the final packing.
Packing run_labeled_dispatcher(const Instance& inst,
                               const std::string& policy_name,
                               tenancy::UsageAccountant* accountant) {
  const PolicyPtr policy = make_policy(policy_name, kPolicySeed);
  Dispatcher dispatcher(inst.dim(), *policy);
  if (accountant != nullptr) dispatcher.set_usage_hook(accountant);
  for (const Event& ev : build_event_stream(inst)) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      dispatcher.arrive(item.arrival, item.size, item.departure,
                        item.tenant);
    } else {
      dispatcher.depart(ev.time, item.id);
    }
  }
  return dispatcher.packing();
}

// Serial: labels + live accounting reproduce every golden hash.
TEST(TenancyParity, LabeledDispatcherMatchesAllGoldenHashes) {
  for (const auto& [name, base] : golden_workloads()) {
    Instance inst = base;
    gen::label_tenants_uniform(inst, kTenants, /*seed=*/0xFA1Du);
    for (const char* policy_name : kPolicies) {
      tenancy::UsageAccountant accountant(kTenants);
      const Packing packing =
          run_labeled_dispatcher(inst, policy_name, &accountant);
      EXPECT_EQ(packing_hash(packing), expected_hash(name, policy_name))
          << name << "/" << policy_name
          << ": tenant labels or the usage hook perturbed placement";
      // The accounting that rode along must cover the whole instance.
      double total = 0.0;
      for (std::uint32_t t = 0; t < kTenants; ++t) {
        total += accountant.demand_integral(t);
      }
      EXPECT_NEAR(total, inst.total_utilization(), 1e-6)
          << name << "/" << policy_name;
    }
  }
}

/// Feeds the instance through a sharded service; returns the drained
/// snapshot. `tenants` > 0 turns the per-shard accountants on and labels
/// the arrivals.
Packing run_sharded(const Instance& inst, std::size_t shards,
                    std::uint32_t tenants, const std::string& policy_name,
                    std::vector<double>* demand_out = nullptr) {
  cloud::ShardedOptions options;
  options.shards = shards;
  options.router = cloud::RouterKind::kRoundRobin;
  options.tenants = tenants;
  cloud::ShardedDispatcher service(
      inst.dim(),
      [&](std::size_t) { return make_policy(policy_name, kPolicySeed); },
      options);
  std::vector<JobId> job_of_item(inst.size(), kNoItem);
  for (const Event& ev : build_event_stream(inst)) {
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      job_of_item[ev.item] =
          service.arrive(item.arrival, item.size, item.departure,
                         tenants > 0 ? item.tenant : kNoTenant);
    } else {
      service.depart(ev.time, job_of_item[ev.item]);
    }
  }
  service.drain();
  if (demand_out != nullptr) {
    demand_out->assign(tenants, 0.0);
    for (std::size_t s = 0; s < shards; ++s) {
      const tenancy::UsageAccountant* acc = service.shard_accountant(s);
      if (acc == nullptr) {
        ADD_FAILURE() << "shard " << s << " has no accountant";
        continue;
      }
      for (std::uint32_t t = 0; t < tenants; ++t) {
        (*demand_out)[t] += acc->demand_integral(t);
      }
    }
  }
  return service.snapshot();
}

bool same_packing(const Packing& a, const Packing& b) {
  if (a.assignment() != b.assignment()) return false;
  if (a.num_bins() != b.num_bins()) return false;
  for (std::size_t i = 0; i < a.num_bins(); ++i) {
    const BinRecord& x = a.bins()[i];
    const BinRecord& y = b.bins()[i];
    if (x.id != y.id || x.opened != y.opened || x.closed != y.closed ||
        x.items != y.items) {
      return false;
    }
  }
  return true;
}

// Sharded K > 1: tenancy on vs off is bin-for-bin identical, and the
// merged shard accountants meter exactly the label-implied integrals.
TEST(TenancyParity, ShardedTenancyOnOffBitExact) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 600;
  params.mu = 10;
  params.span = 200;
  params.bin_size = 20;
  Instance inst = gen::uniform_instance(params, 0xC0FFEE);
  gen::label_tenants_uniform(inst, kTenants, /*seed=*/0xFA1Du);

  for (const std::size_t shards : {2u, 3u}) {
    for (const char* policy_name : {"FirstFit", "BestFit", "MoveToFront"}) {
      SCOPED_TRACE(std::string(policy_name) + " K=" +
                   std::to_string(shards));
      const Packing off = run_sharded(inst, shards, 0, policy_name);
      std::vector<double> demand;
      const Packing on =
          run_sharded(inst, shards, kTenants, policy_name, &demand);
      EXPECT_TRUE(same_packing(off, on))
          << "tenancy wiring perturbed the sharded packing";
      EXPECT_EQ(packing_hash(off), packing_hash(on));

      // Demand integrals are placement-independent, so the shard-merged
      // ledgers must equal the per-tenant utilization of the labels.
      std::vector<double> expected(kTenants, 0.0);
      for (std::size_t i = 0; i < inst.size(); ++i) {
        expected[inst[i].tenant] += inst[i].utilization();
      }
      for (std::uint32_t t = 0; t < kTenants; ++t) {
        EXPECT_NEAR(demand[t], expected[t], 1e-6) << "tenant " << t;
      }
    }
  }
}

// Serial vs sharded: the same labeled feed meters identical per-tenant
// demand integrals no matter the topology.
TEST(TenancyParity, AccountingAgreesAcrossTopologies) {
  gen::UniformParams params;
  params.d = 3;
  params.n = 400;
  params.mu = 8;
  params.span = 150;
  params.bin_size = 12;
  Instance inst = gen::uniform_instance(params, 0xBEEF);
  gen::label_tenants(inst, {4.0, 2.0, 1.0, 1.0}, /*seed=*/99);

  tenancy::UsageAccountant serial_acc(4);
  run_labeled_dispatcher(inst, "BestFit", &serial_acc);

  std::vector<double> sharded_demand;
  run_sharded(inst, 3, 4, "BestFit", &sharded_demand);

  for (std::uint32_t t = 0; t < 4; ++t) {
    EXPECT_NEAR(sharded_demand[t], serial_acc.demand_integral(t), 1e-6)
        << "tenant " << t;
  }
}

}  // namespace
}  // namespace dvbp
