// Multi-tenant fairness layer: arbiter/accountant/gate contracts, the
// strategy-proofness regression, and the arbiter-improves-fairness
// acceptance experiment (docs/TENANCY.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/policies/registry.hpp"
#include "gen/tenants.hpp"
#include "gen/uniform.hpp"
#include "tenancy/accountant.hpp"
#include "tenancy/arbiter.hpp"
#include "tenancy/gate.hpp"
#include "tenancy/report.hpp"

namespace dvbp {
namespace {

constexpr std::uint64_t kPolicySeed = 0xD1CEu;
constexpr double kTol = 1e-9;

// ---------------------------------------------------------------------------
// Arbiter contracts.

TEST(Arbiter, NormalizesSharesAndComputesQuotas) {
  tenancy::ArbiterConfig config;
  config.num_tenants = 3;
  config.fair_shares = {1.0, 2.0, 1.0};
  config.capacity_units = 8.0;
  tenancy::Arbiter arbiter(config);
  EXPECT_NEAR(arbiter.fair_share(0), 0.25, kTol);
  EXPECT_NEAR(arbiter.fair_share(1), 0.50, kTol);
  EXPECT_NEAR(arbiter.fair_share(2), 0.25, kTol);
  EXPECT_NEAR(arbiter.quota(0), 2.0, kTol);
  EXPECT_NEAR(arbiter.quota(1), 4.0, kTol);
}

TEST(Arbiter, AdmitsWithinQuotaAndDeniesBeyondWithoutCredits) {
  tenancy::ArbiterConfig config;
  config.num_tenants = 2;
  config.capacity_units = 4.0;  // quota 2.0 each
  config.init_credits = 0.0;
  tenancy::Arbiter arbiter(config);
  EXPECT_TRUE(arbiter.admit(0, 1.5));
  EXPECT_TRUE(arbiter.admit(0, 0.5));   // exactly at quota
  EXPECT_FALSE(arbiter.admit(0, 0.1));  // over quota, no credits
  EXPECT_TRUE(arbiter.admit(1, 1.0));   // tenant 1 unaffected
  arbiter.release(0, 1.5);
  EXPECT_TRUE(arbiter.admit(0, 1.0));   // room again after release
}

TEST(Arbiter, CreditsBuyOverQuotaAdmission) {
  tenancy::ArbiterConfig config;
  config.num_tenants = 2;
  config.capacity_units = 2.0;  // quota 1.0 each
  config.init_credits = 5.0;
  config.price = 1.0;
  tenancy::Arbiter arbiter(config);
  // Over quota by 3.0: affordable with 5 credits at price 1.
  EXPECT_TRUE(arbiter.admit(0, 4.0));
  // Over quota by 9.0 on top: not affordable.
  EXPECT_FALSE(arbiter.admit(0, 6.0));
}

TEST(Arbiter, SettlementConservesCreditsAndNeverOverdraws) {
  tenancy::ArbiterConfig config;
  config.num_tenants = 3;
  config.init_credits = 2.0;
  config.price = 1.0;
  tenancy::Arbiter arbiter(config);
  const double supply = arbiter.credit_sum();
  EXPECT_NEAR(supply, 6.0, kTol);

  // Tenant 0 hogs: usage 9 of 12 total; entitlement 4 each.
  const std::array<double, 3> usage = {9.0, 2.0, 1.0};
  arbiter.settle(10.0, usage);
  // Zero-sum: supply unchanged (alpha = 0).
  EXPECT_NEAR(arbiter.credit_sum(), supply, 1e-6);
  EXPECT_NEAR(arbiter.public_injected(), 0.0, kTol);
  // Overage 5 at price 1 exceeds tenant 0's balance of 2: capped, so the
  // balance floors at exactly zero -- never negative.
  EXPECT_NEAR(arbiter.credits(0), 0.0, kTol);
  EXPECT_GE(arbiter.credits(1), config.init_credits);
  EXPECT_GE(arbiter.credits(2), config.init_credits);
  // Donors split the pool pro rata to how far under they ran (2 vs 3).
  EXPECT_GT(arbiter.credits(2), arbiter.credits(1));
  for (TenantId t = 0; t < 3; ++t) {
    EXPECT_GE(arbiter.credits(t), -kTol) << "tenant " << t << " overdrew";
  }
}

TEST(Arbiter, AlphaInjectsPublicCreditsTrackedSeparately) {
  tenancy::ArbiterConfig config;
  config.num_tenants = 2;
  config.alpha = 0.5;
  config.init_credits = 1.0;
  tenancy::Arbiter arbiter(config);
  const double supply = arbiter.credit_sum();
  const std::array<double, 2> usage = {1.0, 1.0};
  // The first settle only anchors the epoch clock (length 0, no grant).
  arbiter.settle(0.0, std::array<double, 2>{0.0, 0.0});
  arbiter.settle(4.0, usage);  // epoch length 4, alpha * share * len = 1.0
  EXPECT_NEAR(arbiter.public_injected(), 2.0, kTol);
  EXPECT_NEAR(arbiter.credit_sum(), supply + arbiter.public_injected(),
              1e-6);
}

TEST(Arbiter, StateRoundTripsThroughBytes) {
  tenancy::ArbiterConfig config;
  config.num_tenants = 4;
  config.fair_shares = {3.0, 1.0, 1.0, 1.0};
  config.capacity_units = 10.0;
  config.init_credits = 2.5;
  config.alpha = 0.1;
  tenancy::Arbiter arbiter(config);
  ASSERT_TRUE(arbiter.admit(0, 2.0));
  ASSERT_TRUE(arbiter.admit(2, 1.0));
  arbiter.settle(5.0, std::array<double, 4>{4.0, 0.5, 2.0, 0.0});

  const std::vector<std::uint8_t> bytes = arbiter.state_bytes();
  tenancy::Arbiter restored(config);
  serial::Reader in(bytes.data(), bytes.size());
  restored.restore_state(in);
  for (TenantId t = 0; t < 4; ++t) {
    EXPECT_NEAR(restored.credits(t), arbiter.credits(t), kTol);
    EXPECT_NEAR(restored.inflight(t), arbiter.inflight(t), kTol);
  }
  EXPECT_NEAR(restored.public_injected(), arbiter.public_injected(), kTol);
  EXPECT_EQ(restored.settlements(), arbiter.settlements());
  EXPECT_NEAR(restored.last_settle(), arbiter.last_settle(), kTol);
}

// ---------------------------------------------------------------------------
// Accountant: exact piecewise-constant integration on a hand-built run.

TEST(UsageAccountant, IntegratesDemandAndAttributesBinSeconds) {
  const PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher dispatcher(1, *policy);
  tenancy::UsageAccountant acc(2);
  dispatcher.set_usage_hook(&acc);

  // t=0: tenant 0 arrives with 0.6; one bin opens.
  const JobId a = dispatcher.arrive(0.0, RVec({0.6}), 10.0, 0).job;
  // t=2: tenant 1 arrives with 0.3; same bin (FirstFit, 0.9 <= 1).
  const JobId b = dispatcher.arrive(2.0, RVec({0.3}), 10.0, 1).job;
  // t=6: tenant 0 departs. t=8: tenant 1 departs.
  dispatcher.depart(6.0, a);
  dispatcher.depart(8.0, b);

  // Demand integrals: tenant 0 holds 0.6 over [0,6) = 3.6;
  // tenant 1 holds 0.3 over [2,8) = 1.8.
  EXPECT_NEAR(acc.demand_integral(0), 3.6, kTol);
  EXPECT_NEAR(acc.demand_integral(1), 1.8, kTol);
  // One bin open over [0,8): 8 bin-seconds, split by demand share:
  //   [0,2): all to tenant 0                    -> 2.0
  //   [2,6): 0.6/0.9 vs 0.3/0.9 of 4 seconds    -> 8/3 vs 4/3
  //   [6,8): all to tenant 1                    -> 2.0
  EXPECT_NEAR(acc.total_bin_seconds(), 8.0, kTol);
  EXPECT_NEAR(acc.attributed_bin_seconds(0), 2.0 + 8.0 / 3.0, 1e-6);
  EXPECT_NEAR(acc.attributed_bin_seconds(1), 4.0 / 3.0 + 2.0, 1e-6);
  EXPECT_NEAR(acc.attributed_bin_seconds(0) + acc.attributed_bin_seconds(1) +
                  acc.unattributed_bin_seconds(),
              acc.total_bin_seconds(), 1e-6);
}

TEST(UsageAccountant, EpochCutsPartitionTheIntegral) {
  const PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher dispatcher(1, *policy);
  tenancy::UsageAccountant acc(1);
  dispatcher.set_usage_hook(&acc);
  const JobId a = dispatcher.arrive(0.0, RVec({0.5}), 100.0, 0).job;
  dispatcher.arrive(1.0, RVec({0.2}), 100.0, 0);
  acc.on_advance(4.0, dispatcher.open_bins());
  const std::vector<double> first = acc.cut_epoch();
  dispatcher.depart(6.0, a);
  acc.on_advance(10.0, dispatcher.open_bins());
  const std::vector<double> second = acc.cut_epoch();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NEAR(first[0] + second[0], acc.demand_integral(0), kTol);
  // [0,4): 0.5*4 + 0.2*3 = 2.6.
  EXPECT_NEAR(first[0], 2.6, kTol);
}

TEST(UsageAccountant, ChargesUnlabeledItemsToTenantZero) {
  const PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher dispatcher(1, *policy);
  tenancy::UsageAccountant acc(2);
  dispatcher.set_usage_hook(&acc);
  const JobId a = dispatcher.arrive(0.0, RVec({0.4}), 5.0).job;  // kNoTenant
  dispatcher.depart(5.0, a);
  EXPECT_NEAR(acc.demand_integral(0), 2.0, kTol);
  EXPECT_NEAR(acc.demand_integral(1), 0.0, kTol);
}

// ---------------------------------------------------------------------------
// Gate bookkeeping + Jain index + tracker.

TEST(AdmissionGate, CountsRequestsAdmissionsAndDenials) {
  tenancy::ArbiterConfig config;
  config.num_tenants = 2;
  config.capacity_units = 2.0;  // quota 1.0 each
  tenancy::Arbiter arbiter(config);
  tenancy::AdmissionGate gate(arbiter);
  EXPECT_TRUE(gate.admit(0.0, 0, RVec({0.8})));
  EXPECT_FALSE(gate.admit(1.0, 0, RVec({0.8})));  // over quota
  EXPECT_TRUE(gate.admit(1.0, 1, RVec({0.5})));
  EXPECT_EQ(gate.admitted_total(), 2u);
  EXPECT_EQ(gate.denied_total(), 1u);
  EXPECT_EQ(gate.admitted_jobs(0), 1u);
  EXPECT_EQ(gate.denied_jobs(0), 1u);
  EXPECT_NEAR(gate.requested_units(0), 1.6, kTol);
  EXPECT_NEAR(gate.admitted_units(0), 0.8, kTol);
  gate.release(0, RVec({0.8}));
  EXPECT_TRUE(gate.admit(2.0, 0, RVec({0.8})));
}

TEST(FairnessReport, JainIndexBoundsAndEdgeCases) {
  EXPECT_NEAR(tenancy::jain_index(std::array<double, 3>{1.0, 1.0, 1.0}),
              1.0, kTol);
  EXPECT_NEAR(tenancy::jain_index(std::array<double, 4>{1.0, 0.0, 0.0, 0.0}),
              0.25, kTol);  // 1/n at maximal unfairness
  EXPECT_NEAR(tenancy::jain_index(std::array<double, 2>{0.0, 0.0}), 1.0,
              kTol);  // all-zero defined as fair
  EXPECT_NEAR(tenancy::jain_index({}), 1.0, kTol);
}

TEST(FairnessReport, TrackerWeightsEpochsByLength) {
  tenancy::FairnessTracker tracker(2);
  EXPECT_NEAR(tracker.instant_fairness(), 1.0, kTol);
  const std::array<double, 2> shares = {0.5, 0.5};
  // Fair epoch of length 3, maximally unfair epoch of length 1.
  tracker.on_epoch(3.0, std::array<double, 2>{2.0, 2.0}, shares);
  tracker.on_epoch(1.0, std::array<double, 2>{4.0, 0.0}, shares);
  EXPECT_EQ(tracker.epochs(), 2u);
  EXPECT_NEAR(tracker.instant_fairness(), (3.0 * 1.0 + 1.0 * 0.5) / 4.0,
              kTol);
}

// ---------------------------------------------------------------------------
// End-to-end economy runs: the same loop as `harness --tenants`.

struct EconomyOutcome {
  tenancy::FairnessReport report;
  std::uint64_t denied = 0;
};

struct EconomyParams {
  std::uint32_t tenants = 8;
  double capacity_units = 16.0;
  double credits = 2.0;
  double alpha = 0.0;
  double settle_every = 50.0;
  bool gated = true;  // false: quota off (the no-arbiter baseline)
  TenantId inflate_tenant = kNoTenant;
  double inflate_factor = 1.0;
};

Instance adversarial_workload(const EconomyParams& p) {
  gen::UniformParams params;
  params.d = 2;
  params.n = 2000;
  params.mu = 10;
  params.span = 1000;
  params.bin_size = 100;
  Instance inst = gen::uniform_instance(params, /*seed=*/7);
  gen::label_tenants(inst, std::vector<double>(p.tenants, 1.0), 0x7e4a7e);
  if (p.inflate_tenant != kNoTenant) {
    gen::inflate_tenant_demand(inst, p.inflate_tenant, p.inflate_factor);
  }
  return inst;
}

EconomyOutcome run_economy(const Instance& inst, const EconomyParams& p) {
  tenancy::ArbiterConfig aconfig;
  aconfig.num_tenants = p.tenants;
  aconfig.alpha = p.alpha;
  aconfig.init_credits = p.credits;
  if (p.gated) aconfig.capacity_units = p.capacity_units;
  tenancy::Arbiter arbiter(aconfig);
  tenancy::AdmissionGate gate(arbiter);
  tenancy::UsageAccountant accountant(p.tenants);
  tenancy::FairnessTracker tracker(p.tenants);

  const PolicyPtr policy = make_policy("BestFit", kPolicySeed);
  Dispatcher dispatcher(inst.dim(), *policy);
  dispatcher.set_usage_hook(&accountant);

  std::vector<double> shares(p.tenants, 0.0);
  for (std::uint32_t t = 0; t < p.tenants; ++t) {
    shares[t] = arbiter.fair_share(t);
  }

  Time last_settle = inst.first_arrival();
  Time next_settle = last_settle + p.settle_every;
  const auto settle = [&](Time at) {
    accountant.on_advance(std::max(at, accountant.last_event()),
                          dispatcher.open_bins());
    const std::vector<double> usage = accountant.cut_epoch();
    tracker.on_epoch(at - last_settle, usage, shares);
    gate.settle(at, usage);
    last_settle = at;
  };

  EconomyOutcome out;
  std::vector<JobId> job_of_item(inst.size(), kNoItem);
  const std::vector<Event> events = build_event_stream(inst);
  for (const Event& ev : events) {
    while (ev.time >= next_settle) {
      settle(next_settle);
      next_settle += p.settle_every;
    }
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      if (!gate.admit(ev.time, item.tenant, item.size, item.id)) {
        ++out.denied;
        continue;
      }
      job_of_item[ev.item] =
          dispatcher.arrive(ev.time, item.size, item.departure, item.tenant)
              .job;
    } else {
      if (job_of_item[ev.item] == kNoItem) continue;
      dispatcher.depart(ev.time, job_of_item[ev.item]);
      gate.release(item.tenant, item.size);
    }
  }
  const Time end = events.empty() ? last_settle : events.back().time;
  if (end > last_settle) settle(end);
  out.report = tenancy::build_report(accountant, arbiter, gate, tracker);
  return out;
}

// The acceptance experiment: on the 8-tenant adversarial demand-inflation
// workload, the arbiter strictly improves instant fairness over the
// ungated baseline.
TEST(TenantEconomy, ArbiterStrictlyImprovesInstantFairnessUnderInflation) {
  EconomyParams p;
  p.inflate_tenant = 0;
  p.inflate_factor = 4.0;
  const Instance inst = adversarial_workload(p);

  EconomyParams baseline = p;
  baseline.gated = false;
  const EconomyOutcome with_arbiter = run_economy(inst, p);
  const EconomyOutcome without = run_economy(inst, baseline);

  EXPECT_EQ(without.denied, 0u) << "baseline must admit everything";
  EXPECT_GT(with_arbiter.report.instant_fairness,
            without.report.instant_fairness)
      << "arbiter failed to improve instant fairness on the adversarial "
         "workload";
}

// Strategy-proofness regression: the demand-inflating tenant ends with
// fewer jobs served, no better credit balance, and a worse satisfaction
// ratio than under truthful play; system welfare does not improve.
TEST(TenantEconomy, DemandInflationDoesNotPay) {
  EconomyParams truthful;
  const EconomyOutcome honest =
      run_economy(adversarial_workload(truthful), truthful);

  EconomyParams lying = truthful;
  lying.inflate_tenant = 0;
  lying.inflate_factor = 4.0;
  const EconomyOutcome liar =
      run_economy(adversarial_workload(lying), lying);

  const tenancy::TenantReportRow& honest0 = honest.report.rows.at(0);
  const tenancy::TenantReportRow& liar0 = liar.report.rows.at(0);
  EXPECT_LT(liar0.admitted_jobs, honest0.admitted_jobs)
      << "inflation should cost the liar served jobs";
  EXPECT_LE(liar0.credits, honest0.credits + kTol)
      << "inflation should not improve the liar's credit balance";
  ASSERT_GT(honest0.requested_units, 0.0);
  ASSERT_GT(liar0.requested_units, 0.0);
  EXPECT_LT(liar0.admitted_units / liar0.requested_units,
            honest0.admitted_units / honest0.requested_units)
      << "inflation should lower the liar's satisfaction ratio";
  EXPECT_LE(liar.report.welfare, honest.report.welfare + kTol);
}

// Conservation holds over a full economy run with public injection.
TEST(TenantEconomy, CreditSupplyConservedUpToPublicBlock) {
  EconomyParams p;
  p.alpha = 0.05;
  p.inflate_tenant = 2;
  p.inflate_factor = 3.0;
  const EconomyOutcome out = run_economy(adversarial_workload(p), p);
  const double initial =
      static_cast<double>(p.tenants) * p.credits;
  EXPECT_NEAR(out.report.credit_sum,
              initial + out.report.public_injected, 1e-6);
  for (const tenancy::TenantReportRow& row : out.report.rows) {
    EXPECT_GE(row.credits, -kTol)
        << "tenant " << row.tenant << " overdrew";
  }
}

}  // namespace
}  // namespace dvbp
