// Tests for the statistics substrate: RNG determinism and distributional
// sanity, Welford accumulators (including parallel merge), quantiles, and
// histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace dvbp {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(124);
  EXPECT_NE(SplitMix64(123).next(), c.next());
}

TEST(Xoshiro, DeterministicUnderSeed) {
  Xoshiro256pp a(7);
  Xoshiro256pp b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256pp rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, UniformIntCoversRangeInclusively) {
  Xoshiro256pp rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of {3..7} hit
}

TEST(Xoshiro, UniformIntDegenerateRange) {
  Xoshiro256pp rng(13);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(5, 4), 5);  // clamps to lo
}

TEST(Xoshiro, UniformIntUnbiasedMean) {
  Xoshiro256pp rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.uniform_int(1, 100));
  }
  EXPECT_NEAR(sum / n, 50.5, 1.0);
}

TEST(Xoshiro, NormalMomentsLookGaussian) {
  Xoshiro256pp rng(19);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
  EXPECT_NEAR(rng.normal(10.0, 0.0), 10.0, 1e-12);
}

TEST(Xoshiro, TrialStreamsAreIndependentAndStable) {
  auto a1 = Xoshiro256pp::for_trial(42, 1);
  auto a1_again = Xoshiro256pp::for_trial(42, 1);
  auto a2 = Xoshiro256pp::for_trial(42, 2);
  EXPECT_EQ(a1(), a1_again());
  EXPECT_NE(Xoshiro256pp::for_trial(42, 1)(), a2());
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256pp rng(23);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStats, ConfidenceIntervalShrinks) {
  RunningStats small;
  RunningStats large;
  Xoshiro256pp rng(29);
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_GT(small.ci_halfwidth(), large.ci_halfwidth());
}

TEST(Descriptive, MeanStddevQuantiles) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(xs), 3.0);
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2}, 0.5), 1.5);  // interpolates
}

TEST(Descriptive, EdgeCases) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev({5.0}), 0.0);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(Histogram, BucketsAndBoundaries) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);    // bucket 0
  h.add(1.99);   // bucket 0
  h.add(2.0);    // bucket 1
  h.add(9.999);  // bucket 4
  h.add(10.0);   // overflow (half-open)
  h.add(-0.1);   // underflow
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(1), 4.0);
}

TEST(Histogram, ValidatesConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  Histogram h(0, 1, 2);
  EXPECT_THROW(h.bucket_lo(2), std::out_of_range);
}

TEST(Histogram, RenderShowsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);  // peak bucket
  EXPECT_NE(out.find(" 2"), std::string::npos);
}

}  // namespace
}  // namespace dvbp
