// End-to-end tests of the binary-RPC placement server over real loopback
// sockets: every RPC type, packing-hash parity against an in-process
// ShardedDispatcher fed the identical sequence, deterministic backpressure
// (RETRY_LATER) via a deliberately slow policy, duplicate-id rejection,
// the malformed-bytes -> close-connection path, and the graceful-drain
// guarantee that every accepted request gets exactly one response and the
// final hash matches the in-process run.
#include "net/server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "cloud/sharded_dispatcher.hpp"
#include "core/packing_hash.hpp"
#include "core/policies/registry.hpp"
#include "net/client.hpp"
#include "obs/metrics.hpp"

namespace dvbp::net {
namespace {

using namespace std::chrono_literals;

cloud::ShardedOptions service_options(std::size_t shards,
                                      obs::MetricRegistry* metrics = nullptr,
                                      std::size_t queue_capacity = 4096) {
  cloud::ShardedOptions opts;
  opts.shards = shards;
  opts.router = cloud::RouterKind::kRoundRobin;
  opts.queue_capacity = queue_capacity;
  opts.metrics = metrics;
  return opts;
}

cloud::ShardedDispatcher::PolicyFactory first_fit_factory() {
  return [](std::size_t) { return make_policy("FirstFit"); };
}

/// Delegating policy that sleeps inside every placement decision: makes
/// shard queues back up on demand so the RETRY_LATER paths are exercised
/// deterministically instead of by racing the (fast) real policies.
class SlowPolicy final : public Policy {
 public:
  SlowPolicy(PolicyPtr inner, std::chrono::milliseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}

  std::string_view name() const noexcept override { return "SlowFirstFit"; }
  bool is_clairvoyant() const noexcept override {
    return inner_->is_clairvoyant();
  }
  BinId select_bin(Time now, const Item& item,
                   std::span<const BinView> open_bins) override {
    std::this_thread::sleep_for(delay_);
    return inner_->select_bin(now, item, open_bins);
  }
  void on_open(Time now, BinId bin, const Item& first) override {
    inner_->on_open(now, bin, first);
  }
  void on_pack(Time now, BinId bin, const Item& item) override {
    inner_->on_pack(now, bin, item);
  }
  void on_depart(Time now, BinId bin, const Item& item,
                 bool closed) override {
    inner_->on_depart(now, bin, item, closed);
  }
  void reset() override { inner_->reset(); }
  void save_state(serial::Writer& out) const override {
    inner_->save_state(out);
  }
  void restore_state(serial::Reader& in) override {
    inner_->restore_state(in);
  }

 private:
  PolicyPtr inner_;
  std::chrono::milliseconds delay_;
};

RVec size2(double a, double b) {
  RVec v(2);
  v[0] = a;
  v[1] = b;
  return v;
}

/// Snapshot needs quiescence; the window between the last completion and
/// the applied-ops counter is tiny but real, so retry briefly.
Response snapshot_retry(Client& client) {
  for (int i = 0; i < 400; ++i) {
    const Response resp = client.snapshot();
    if (resp.status != Status::kNotQuiescent) return resp;
    std::this_thread::sleep_for(2ms);
  }
  ADD_FAILURE() << "snapshot never became quiescent";
  return Response{};
}

/// Raw loopback socket for tests that need to send bytes the Client
/// refuses to produce (duplicate ids, garbage).
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw NetError("raw socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      ::close(fd_);
      fd_ = -1;
      throw NetError("raw connect() failed");
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, 0);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Blocks for one response frame.
  Response recv_one() {
    std::uint8_t chunk[4096];
    while (true) {
      if (auto payload = decoder_.next()) {
        return decode_response(payload->data(), payload->size());
      }
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        throw NetError("raw connection closed");
      }
      decoder_.feed(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the server closed the connection (EOF) within ~2s.
  bool closed_by_peer() {
    std::uint8_t chunk[256];
    const auto deadline = std::chrono::steady_clock::now() + 2s;
    while (std::chrono::steady_clock::now() < deadline) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n == 0) return true;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        std::this_thread::sleep_for(5ms);
        continue;
      }
      if (n < 0) return true;  // RST counts as closed
      // Data (late responses) is fine; keep reading until EOF.
    }
    return false;
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

TEST(NetServer, AllRpcTypesOverLoopback) {
  obs::MetricRegistry metrics;
  cloud::ShardedDispatcher service(2, first_fit_factory(),
                                   service_options(2, &metrics));
  ServerOptions opts;
  opts.metrics = &metrics;
  PlacementServer server(service, opts);
  ASSERT_GT(server.port(), 0);

  Client client("127.0.0.1", server.port());

  const Response pong = client.ping();
  EXPECT_EQ(pong.status, Status::kOk);
  EXPECT_EQ(pong.type, MsgType::kPing);

  const Response placed = client.arrive(1.0, size2(0.4, 0.3), 10.0);
  ASSERT_EQ(placed.status, Status::kOk);
  EXPECT_EQ(placed.type, MsgType::kArrive);

  // The completion fired before the response, so the op is applied and the
  // query must see it.
  const Response q1 = client.query(1.5);
  ASSERT_EQ(q1.status, Status::kOk);
  EXPECT_EQ(q1.jobs_active, 1u);
  EXPECT_EQ(q1.jobs_admitted, 1u);
  EXPECT_EQ(q1.open_bins, 1u);

  // Departing an unknown job is a typed error, not a closed connection.
  const Response bad = client.depart(2.0, placed.job + 999);
  EXPECT_EQ(bad.status, Status::kUnknownJob);

  const Response departed = client.depart(2.0, placed.job);
  ASSERT_EQ(departed.status, Status::kOk);
  const Response q2 = client.query(2.5);
  ASSERT_EQ(q2.status, Status::kOk);
  EXPECT_EQ(q2.jobs_active, 0u);

  // Double-depart: the job is gone now.
  const Response dd = client.depart(3.0, placed.job);
  EXPECT_EQ(dd.status, Status::kUnknownJob);

  const Response snap = snapshot_retry(client);
  ASSERT_EQ(snap.status, Status::kOk);
  EXPECT_EQ(snap.type, MsgType::kSnapshot);
  EXPECT_EQ(snap.num_bins, 1u);  // one bin was opened over the run
  EXPECT_NE(snap.packing_hash, 0u);

  // Oversized arrive -> BAD_REQUEST, connection stays usable.
  const Response too_big = client.arrive(4.0, size2(1.5, 0.1));
  EXPECT_EQ(too_big.status, Status::kBadRequest);
  EXPECT_EQ(client.ping().status, Status::kOk);

  client.close();
  server.stop();

  EXPECT_GE(metrics.counter("dvbp.net.connections_total").value(), 1u);
  EXPECT_GE(metrics.counter("dvbp.net.requests_total").value(), 8u);
  EXPECT_GT(metrics.counter("dvbp.net.frames_in_total").value(), 0u);
  EXPECT_GT(metrics.counter("dvbp.net.frames_out_total").value(), 0u);
  EXPECT_GT(metrics.counter("dvbp.net.bytes_in_total").value(), 0u);
  EXPECT_GT(metrics.counter("dvbp.net.bytes_out_total").value(), 0u);
}

// The wire adds nothing and loses nothing: the same arrive/depart sequence
// through a socket and through an in-process ShardedDispatcher must end in
// bit-identical packings.
TEST(NetServer, PackingHashParityWithInProcessService) {
  constexpr std::size_t kShards = 2;
  constexpr int kOps = 300;

  // Generate one deterministic mixed sequence.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> coord(0.05, 0.6);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  struct OpSpec {
    bool depart;
    double a, b;        // arrive size
    std::size_t victim;  // index into live jobs at execution time
  };
  std::vector<OpSpec> script;
  int live_estimate = 0;
  for (int i = 0; i < kOps; ++i) {
    const bool depart = coin(rng) < 0.35 && live_estimate > 0;
    OpSpec spec{depart, coord(rng), coord(rng), 0};
    if (depart) {
      spec.victim = static_cast<std::size_t>(rng() %
                                             static_cast<std::uint64_t>(
                                                 live_estimate));
      --live_estimate;
    } else {
      ++live_estimate;
    }
    script.push_back(spec);
  }

  // Over the wire.
  std::uint64_t wire_hash = 0, wire_bins = 0;
  double wire_cost = 0.0;
  {
    cloud::ShardedDispatcher service(2, first_fit_factory(),
                                     service_options(kShards));
    PlacementServer server(service);
    Client client("127.0.0.1", server.port());
    std::vector<std::uint64_t> live;
    double t = 0.0;
    for (const OpSpec& spec : script) {
      t += 0.01;
      if (spec.depart) {
        const std::uint64_t job = live[spec.victim];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(spec.victim));
        ASSERT_EQ(client.depart(t, job).status, Status::kOk);
      } else {
        const Response resp = client.arrive(t, size2(spec.a, spec.b));
        ASSERT_EQ(resp.status, Status::kOk);
        live.push_back(resp.job);
      }
    }
    const Response drained = client.drain();
    ASSERT_EQ(drained.status, Status::kOk);
    wire_hash = drained.packing_hash;
    wire_bins = drained.num_bins;
    wire_cost = drained.cost;
    server.wait();  // drain closes everything down
  }

  // In process.
  cloud::ShardedDispatcher local(2, first_fit_factory(),
                                 service_options(kShards));
  std::vector<JobId> live;
  double t = 0.0;
  for (const OpSpec& spec : script) {
    t += 0.01;
    if (spec.depart) {
      const JobId job = live[spec.victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(spec.victim));
      local.depart(t, job);
    } else {
      live.push_back(local.arrive(t, size2(spec.a, spec.b)));
    }
  }
  local.drain();
  const Packing packing = local.snapshot();

  EXPECT_EQ(wire_hash, packing_hash(packing));
  EXPECT_EQ(wire_bins, packing.num_bins());
  EXPECT_DOUBLE_EQ(wire_cost, packing.cost());
}

// Backpressure: a slow policy plus a tiny shard queue and in-flight window
// forces RETRY_LATER. Every request still gets exactly one response, and
// accepted + rejected adds up.
TEST(NetServer, BackpressureYieldsRetryLater) {
  obs::MetricRegistry metrics;
  cloud::ShardedOptions sopts =
      service_options(1, &metrics, /*queue_capacity=*/2);
  cloud::ShardedDispatcher service(
      2,
      [](std::size_t) {
        return PolicyPtr(new SlowPolicy(make_policy("FirstFit"), 15ms));
      },
      sopts);
  ServerOptions opts;
  opts.metrics = &metrics;
  opts.max_inflight_per_conn = 4;
  PlacementServer server(service, opts);
  Client client("127.0.0.1", server.port());

  constexpr int kBurst = 20;
  std::map<std::uint64_t, int> responses;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kBurst; ++i) {
    ids.push_back(client.send_arrive(1.0 + i * 0.001, size2(0.1, 0.1)));
  }
  client.flush();

  std::uint64_t ok = 0, retry = 0;
  for (int i = 0; i < kBurst; ++i) {
    const Response resp = client.recv_response();
    ++responses[resp.id];
    if (resp.status == Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(resp.status, Status::kRetryLater);
      ++retry;
    }
  }
  EXPECT_EQ(ok + retry, static_cast<std::uint64_t>(kBurst));
  EXPECT_GE(retry, 1u) << "tiny queue + slow policy must reject something";
  EXPECT_GE(ok, 1u);
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(responses[id], 1) << "request " << id;
  }
  EXPECT_GE(metrics.counter("dvbp.net.backpressure_rejections_total").value(),
            retry);

  client.close();
  server.stop();
}

// Two in-flight requests sharing an id are indistinguishable to the
// response matcher, so the second is refused outright.
TEST(NetServer, DuplicateRequestIdIsBadRequest) {
  cloud::ShardedDispatcher service(
      2,
      [](std::size_t) {
        return PolicyPtr(new SlowPolicy(make_policy("FirstFit"), 50ms));
      },
      service_options(1));
  PlacementServer server(service);

  RawConn raw(server.port());
  Request req;
  req.id = 7;
  req.type = MsgType::kArrive;
  req.time = 1.0;
  req.size = size2(0.2, 0.2);
  std::vector<std::uint8_t> bytes;
  encode_request(req, bytes);   // id 7, once
  encode_request(req, bytes);   // id 7, again, while the first is pending
  raw.send_bytes(bytes);

  const Response r1 = raw.recv_one();
  const Response r2 = raw.recv_one();
  EXPECT_EQ(r1.id, 7u);
  EXPECT_EQ(r2.id, 7u);
  // The duplicate bounces immediately; the original still applies.
  const bool dup_then_ok = r1.status == Status::kBadRequest &&
                           r2.status == Status::kOk;
  const bool ok_then_dup = r1.status == Status::kOk &&
                           r2.status == Status::kBadRequest;
  EXPECT_TRUE(dup_then_ok || ok_then_dup)
      << status_name(r1.status) << " / " << status_name(r2.status);

  server.stop();
}

// Corrupt bytes sever exactly the offending connection; the server keeps
// serving fresh ones and counts the decode error.
TEST(NetServer, MalformedBytesCloseOnlyThatConnection) {
  obs::MetricRegistry metrics;
  cloud::ShardedDispatcher service(2, first_fit_factory(),
                                   service_options(1, &metrics));
  ServerOptions opts;
  opts.metrics = &metrics;
  PlacementServer server(service, opts);

  // An implausible length header: rejected before any payload arrives.
  {
    RawConn raw(server.port());
    raw.send_bytes({0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00});
    EXPECT_TRUE(raw.closed_by_peer());
  }
  // A CRC-corrupt ping.
  {
    RawConn raw(server.port());
    Request ping;
    ping.id = 1;
    ping.type = MsgType::kPing;
    std::vector<std::uint8_t> bytes;
    encode_request(ping, bytes);
    bytes.back() ^= 0x40;
    raw.send_bytes(bytes);
    EXPECT_TRUE(raw.closed_by_peer());
  }
  EXPECT_GE(metrics.counter("dvbp.net.decode_errors_total").value(), 2u);

  // The server is still alive for well-behaved clients.
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.ping().status, Status::kOk);
  EXPECT_EQ(client.arrive(1.0, size2(0.3, 0.3)).status, Status::kOk);

  client.close();
  server.stop();
}

// Graceful drain under a pipelined backlog: every accepted request gets
// exactly one response, the Drain answer carries the final packing hash,
// and that hash matches an in-process run of the same accepted sequence.
TEST(NetServer, GracefulDrainAnswersEverythingWithFinalHash) {
  constexpr std::size_t kShards = 2;
  constexpr int kArrives = 250;

  std::vector<std::pair<double, double>> sizes;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> coord(0.05, 0.5);
  for (int i = 0; i < kArrives; ++i) {
    sizes.emplace_back(coord(rng), coord(rng));
  }

  cloud::ShardedDispatcher service(2, first_fit_factory(),
                                   service_options(kShards));
  PlacementServer server(service);
  Client client("127.0.0.1", server.port());

  // Pipeline the whole backlog, then the drain, in one burst.
  std::map<std::uint64_t, int> responses;
  std::vector<std::uint64_t> ids;
  double t = 0.0;
  for (const auto& [a, b] : sizes) {
    t += 0.01;
    ids.push_back(client.send_arrive(t, size2(a, b)));
  }
  const std::uint64_t drain_id = client.send_drain();
  ids.push_back(drain_id);
  client.flush();

  std::uint64_t drain_hash = 0, drain_bins = 0;
  int ok_arrives = 0;
  for (int i = 0; i < kArrives + 1; ++i) {
    const Response resp = client.recv_response();
    ++responses[resp.id];
    if (resp.id == drain_id) {
      ASSERT_EQ(resp.status, Status::kOk);
      drain_hash = resp.packing_hash;
      drain_bins = resp.num_bins;
    } else {
      // Everything was submitted before the Drain on the same connection,
      // so it all got in ahead of the shutdown gate.
      ASSERT_EQ(resp.status, Status::kOk);
      ++ok_arrives;
    }
  }
  EXPECT_EQ(ok_arrives, kArrives);
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(responses[id], 1) << "request " << id;
  }
  // After the drain response the server closes the connection.
  EXPECT_THROW(client.recv_response(), NetError);
  server.wait();
  EXPECT_TRUE(server.draining());

  // The same arrivals in process must reproduce the hash.
  cloud::ShardedDispatcher local(2, first_fit_factory(),
                                 service_options(kShards));
  double lt = 0.0;
  for (const auto& [a, b] : sizes) {
    lt += 0.01;
    local.arrive(lt, size2(a, b));
  }
  local.drain();
  const Packing packing = local.snapshot();
  EXPECT_EQ(drain_hash, packing_hash(packing));
  EXPECT_EQ(drain_bins, packing.num_bins());
}

// request_drain() is the signal-handler entry point; route a real SIGTERM
// through install_signal_drain and watch the server wind itself down.
TEST(NetServer, SignalTriggersGracefulDrain) {
  cloud::ShardedDispatcher service(2, first_fit_factory(),
                                   service_options(2));
  PlacementServer server(service);
  server.install_signal_drain(SIGTERM);

  Client client("127.0.0.1", server.port());
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(client.arrive(1.0 + i, size2(0.2, 0.2)).status, Status::kOk);
  }

  ASSERT_EQ(std::raise(SIGTERM), 0);
  server.wait();
  EXPECT_TRUE(server.draining());

  // Post-drain the service is quiescent with all five jobs applied:
  // round-robin puts 3 jobs on shard 0 and 2 on shard 1, one bin each.
  EXPECT_EQ(service.jobs_admitted(), 5u);
  EXPECT_EQ(service.snapshot().num_bins(), 2u);
}

// New connections arriving while draining are refused (accept stops), and
// in-flight connections get SHUTTING_DOWN for new work.
TEST(NetServer, DrainingRefusesNewWork) {
  cloud::ShardedDispatcher service(2, first_fit_factory(),
                                   service_options(1));
  PlacementServer server(service);
  Client client("127.0.0.1", server.port());
  ASSERT_EQ(client.arrive(1.0, size2(0.2, 0.2)).status, Status::kOk);

  server.request_drain();
  // The drain races our next request; keep sending until the gate is seen
  // or the server closes the connection (both are acceptable ends).
  bool saw_shutting_down = false;
  try {
    for (int i = 0; i < 200; ++i) {
      const Response resp = client.arrive(2.0 + i * 0.01, size2(0.1, 0.1));
      if (resp.status == Status::kShuttingDown) {
        saw_shutting_down = true;
        break;
      }
      ASSERT_EQ(resp.status, Status::kOk);
      std::this_thread::sleep_for(1ms);
    }
  } catch (const NetError&) {
    // Connection closed by the graceful sweep before we saw the status:
    // equally a refusal of new work.
    saw_shutting_down = true;
  }
  EXPECT_TRUE(saw_shutting_down);
  server.wait();
}

}  // namespace
}  // namespace dvbp::net
