// Tests for BinState bookkeeping and the Packing offline auditor.
#include <gtest/gtest.h>

#include "core/bin_state.hpp"
#include "core/packing.hpp"

namespace dvbp {
namespace {

std::vector<Item> three_items() {
  return {
      Item(0, 0.0, 2.0, RVec{0.5, 0.2}),
      Item(1, 0.0, 3.0, RVec{0.4, 0.4}),
      Item(2, 1.0, 4.0, RVec{0.3, 0.1}),
  };
}

TEST(BinState, AddAccumulatesLoad) {
  const auto items = three_items();
  UsagePool pool;
  BinState bin(0, 2, 0.0, 1.0, &pool);
  EXPECT_TRUE(bin.is_empty());
  bin.add(items[0]);
  bin.add(items[1]);
  EXPECT_EQ(bin.num_active(), 2u);
  EXPECT_NEAR(bin.load()[0], 0.9, 1e-12);
  EXPECT_NEAR(bin.load()[1], 0.6, 1e-12);
  EXPECT_EQ(bin.total_packed(), 2u);
  EXPECT_DOUBLE_EQ(bin.latest_departure(), 3.0);
}

TEST(BinState, FitsRespectsEveryDimension) {
  const auto items = three_items();
  UsagePool pool;
  BinState bin(0, 2, 0.0, 1.0, &pool);
  bin.add(items[0]);  // load (0.5, 0.2)
  EXPECT_TRUE(bin.fits(RVec{0.5, 0.8}));
  EXPECT_FALSE(bin.fits(RVec{0.6, 0.1}));
  EXPECT_FALSE(bin.fits(RVec{0.1, 0.9}));
}

TEST(BinState, RemoveUpdatesLoadAndLatestDeparture) {
  const auto items = three_items();
  UsagePool pool;
  BinState bin(0, 2, 0.0, 1.0, &pool);
  bin.add(items[0]);
  bin.add(items[1]);
  EXPECT_FALSE(bin.remove(items[1]));
  EXPECT_DOUBLE_EQ(bin.latest_departure(), 2.0);
  EXPECT_NEAR(bin.load()[0], 0.5, 1e-12);
  EXPECT_TRUE(bin.remove(items[0]));
  EXPECT_TRUE(bin.is_empty());
  EXPECT_TRUE(bin.load().is_nonnegative());
  // total_packed survives removals (lifetime counter).
  EXPECT_EQ(bin.total_packed(), 2u);
}

// ---- Packing auditor ----------------------------------------------------

Instance audit_instance() {
  Instance inst(1);
  inst.add(0.0, 2.0, RVec{0.6});
  inst.add(1.0, 3.0, RVec{0.6});
  return inst;
}

TEST(Packing, ValidAccepted) {
  Instance inst = audit_instance();
  // Item 0 -> bin 0, item 1 -> bin 1 (they overlap and don't fit together).
  Packing p({0, 1}, {BinRecord{0, 0.0, 2.0, {0}}, BinRecord{1, 1.0, 3.0, {1}}});
  EXPECT_FALSE(p.validate(inst).has_value());
  EXPECT_DOUBLE_EQ(p.cost(), 4.0);
  EXPECT_EQ(p.open_bins_at(1.5), 2u);
  EXPECT_EQ(p.open_bins_at(2.5), 1u);
}

TEST(Packing, DetectsOverload) {
  Instance inst = audit_instance();
  // Both items in one bin: 1.2 > 1 during [1,2).
  Packing p({0, 0}, {BinRecord{0, 0.0, 3.0, {0, 1}}});
  const auto err = p.validate(inst);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("overload"), std::string::npos);
}

TEST(Packing, DetectsWrongUsagePeriod) {
  Instance inst = audit_instance();
  Packing p({0, 1},
            {BinRecord{0, 0.0, 2.5, {0}}, BinRecord{1, 1.0, 3.0, {1}}});
  ASSERT_TRUE(p.validate(inst).has_value());
}

TEST(Packing, DetectsMissingItem) {
  Instance inst = audit_instance();
  Packing p({0, 0}, {BinRecord{0, 0.0, 2.0, {0}}});
  ASSERT_TRUE(p.validate(inst).has_value());
}

TEST(Packing, DetectsDoublePacking) {
  Instance inst = audit_instance();
  Packing p({0, 1}, {BinRecord{0, 0.0, 2.0, {0, 0}},
                     BinRecord{1, 1.0, 3.0, {1}}});
  ASSERT_TRUE(p.validate(inst).has_value());
}

TEST(Packing, DetectsAssignmentMismatch) {
  Instance inst = audit_instance();
  Packing p({1, 1}, {BinRecord{0, 0.0, 2.0, {0}}, BinRecord{1, 1.0, 3.0, {1}}});
  ASSERT_TRUE(p.validate(inst).has_value());
}

TEST(Packing, DetectsIdleGap) {
  // Items [0,1) and [2,3) in the same bin: the bin would sit idle on [1,2),
  // which the model forbids (a closed bin never reopens).
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.5});
  inst.add(2.0, 3.0, RVec{0.5});
  Packing p({0, 0}, {BinRecord{0, 0.0, 3.0, {0, 1}}});
  const auto err = p.validate(inst);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("idle"), std::string::npos);
}

TEST(Packing, GanttCsvListsBinsAndItems) {
  Instance inst = audit_instance();
  Packing p({0, 1},
            {BinRecord{0, 0.0, 2.0, {0}}, BinRecord{1, 1.0, 3.0, {1}}});
  const std::string csv = p.to_gantt_csv(inst);
  EXPECT_NE(csv.find("kind,bin,item,start,end\n"), std::string::npos);
  EXPECT_NE(csv.find("bin,0,,0,2\n"), std::string::npos);
  EXPECT_NE(csv.find("item,0,0,0,2\n"), std::string::npos);
  EXPECT_NE(csv.find("bin,1,,1,3\n"), std::string::npos);
  EXPECT_NE(csv.find("item,1,1,1,3\n"), std::string::npos);
}

TEST(Packing, EmptyPackingOfEmptyInstance) {
  Instance inst(1);
  Packing p;
  EXPECT_FALSE(p.validate(inst).has_value());
  EXPECT_DOUBLE_EQ(p.cost(), 0.0);
  EXPECT_EQ(p.num_bins(), 0u);
}

}  // namespace
}  // namespace dvbp
