// Tests for the thread pool and parallel_for: completion, exception
// propagation, determinism of sharded work, and reuse across waves.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dvbp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;  // 0 -> hardware_concurrency, at least 1
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, FuturePropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 30; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, DestructorCompletesPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<int> hits(n, 0);
  parallel_for(pool, n, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RethrowsWorkerException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 37) throw std::logic_error("bad");
                            }),
               std::logic_error);
}

TEST(ParallelFor, MinChunkRespected) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  parallel_for(
      pool, 10, [&](std::size_t) { ++total; }, /*min_chunk=*/100);
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  // Deterministic per-index work: squares summed must agree across pools.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(500);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * static_cast<double>(i);
    });
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  EXPECT_DOUBLE_EQ(run(1), run(4));
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    parallel_for(pool, 40, [&](std::size_t) { ++counter; });
  }
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace dvbp
