// Tests for the thread pool and parallel_for: completion, exception
// propagation, determinism of sharded work, and reuse across waves.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace dvbp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;  // 0 -> hardware_concurrency, at least 1
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, FuturePropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 30; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, DestructorCompletesPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<int> hits(n, 0);
  parallel_for(pool, n, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, SurfacesFailingIndexAndOriginalException) {
  ThreadPool pool(3);
  try {
    parallel_for(pool, 100, [](std::size_t i) {
      if (i == 37) throw std::logic_error("bad");
    });
    FAIL() << "expected ParallelForError";
  } catch (const ParallelForError& e) {
    EXPECT_EQ(e.index(), 37u);
    EXPECT_NE(std::string(e.what()).find("index 37"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bad"), std::string::npos);
    EXPECT_THROW(std::rethrow_exception(e.cause()), std::logic_error);
  }
}

TEST(ParallelFor, ExceptionFromNonFirstChunkIsReported) {
  // min_chunk=10 over n=100 on 2 workers forces multiple chunks; the only
  // failure sits deep in a later chunk. Pre-fix, the error came back as the
  // bare exception with no index; worse, a failure in any chunk but the
  // first harvested one could be dropped entirely.
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  try {
    parallel_for(
        pool, 100,
        [&](std::size_t i) {
          ++executed;
          if (i == 91) throw std::runtime_error("late chunk");
        },
        /*min_chunk=*/10);
    FAIL() << "expected ParallelForError";
  } catch (const ParallelForError& e) {
    EXPECT_EQ(e.index(), 91u);
    EXPECT_NE(std::string(e.what()).find("index 91"), std::string::npos);
  }
  // Other chunks ran to completion; only the failing chunk's tail (92..99)
  // was skipped.
  EXPECT_GE(executed.load(), 92);
}

TEST(ParallelFor, LowestFailingIndexWinsAcrossChunks) {
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    try {
      parallel_for(
          pool, 64,
          [](std::size_t i) {
            if (i == 5 || i == 23 || i == 58) {
              throw std::runtime_error("idx " + std::to_string(i));
            }
          },
          /*min_chunk=*/8);
      FAIL() << "expected ParallelForError";
    } catch (const ParallelForError& e) {
      // Deterministic regardless of which worker finished first.
      EXPECT_EQ(e.index(), 5u);
    }
  }
}

TEST(ThreadPool, ExceptionFromLastTaskBeforeShutdownSurvives) {
  // The future must carry the exception even when the pool is destroyed
  // (shutdown joins workers) before the caller harvests it.
  std::future<void> fut;
  {
    ThreadPool pool(1);
    pool.submit([] {});  // keep the worker busy so the next task is last
    fut = pool.submit([] { throw std::runtime_error("last task"); });
  }  // destructor completes pending tasks, then joins
  try {
    fut.get();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "last task");
  }
}

TEST(ParallelFor, MinChunkRespected) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  parallel_for(
      pool, 10, [&](std::size_t) { ++total; }, /*min_chunk=*/100);
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelFor, ResultIndependentOfThreadCount) {
  // Deterministic per-index work: squares summed must agree across pools.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(500);
    parallel_for(pool, out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * static_cast<double>(i);
    });
    return std::accumulate(out.begin(), out.end(), 0.0);
  };
  EXPECT_DOUBLE_EQ(run(1), run(4));
}

TEST(ThreadPool, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 5; ++wave) {
    parallel_for(pool, 40, [&](std::size_t) { ++counter; });
  }
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace dvbp
