// Tests for the event stream: ordering realizes half-open interval
// semantics (departures before arrivals at equal timestamps) and stable
// arrival order for simultaneous arrivals.
#include "core/event.hpp"

#include <gtest/gtest.h>

namespace dvbp {
namespace {

TEST(EventStream, TwoEventsPerItem) {
  Instance inst(1);
  inst.add(0, 1, RVec{0.5});
  inst.add(2, 3, RVec{0.5});
  const auto events = build_event_stream(inst);
  ASSERT_EQ(events.size(), 4u);
}

TEST(EventStream, SortedByTime) {
  Instance inst(1);
  inst.add(5, 6, RVec{0.5});
  inst.add(0, 10, RVec{0.5});
  inst.add(2, 3, RVec{0.5});
  const auto events = build_event_stream(inst);
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    EXPECT_LE(events[i].time, events[i + 1].time);
  }
}

TEST(EventStream, DeparturesBeforeArrivalsAtSameTime) {
  Instance inst(1);
  inst.add(0, 1, RVec{0.5});  // departs at 1
  inst.add(1, 2, RVec{0.5});  // arrives at 1
  const auto events = build_event_stream(inst);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[1].kind, EventKind::kDeparture);
  EXPECT_EQ(events[1].item, 0u);
  EXPECT_EQ(events[2].kind, EventKind::kArrival);
  EXPECT_EQ(events[2].item, 1u);
}

TEST(EventStream, SimultaneousArrivalsKeepInstanceOrder) {
  Instance inst(1);
  for (int i = 0; i < 5; ++i) inst.add(0, 1 + i, RVec{0.1});
  const auto events = build_event_stream(inst);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].kind, EventKind::kArrival);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].item,
              static_cast<ItemId>(i));
  }
}

TEST(EventStream, SimultaneousDeparturesDeterministic) {
  Instance inst(1);
  inst.add(0, 5, RVec{0.1});
  inst.add(1, 5, RVec{0.1});
  const auto events = build_event_stream(inst);
  // Both departures at t=5, ordered by item id.
  EXPECT_EQ(events[2].item, 0u);
  EXPECT_EQ(events[3].item, 1u);
}

TEST(EventTimes, DistinctSorted) {
  Instance inst(1);
  inst.add(0, 2, RVec{0.5});
  inst.add(0, 3, RVec{0.5});
  inst.add(2, 4, RVec{0.5});
  const auto times = event_times(inst);
  EXPECT_EQ(times, (std::vector<Time>{0, 2, 3, 4}));
}

TEST(EventOrder, StrictWeakOrdering) {
  const EventOrder less{};
  Event a{1.0, EventKind::kDeparture, 0};
  Event b{1.0, EventKind::kArrival, 0};
  Event c{1.0, EventKind::kArrival, 1};
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
  EXPECT_TRUE(less(b, c));
  EXPECT_FALSE(less(a, a));
}

}  // namespace
}  // namespace dvbp
