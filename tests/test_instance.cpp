// Tests for Item and Instance: construction, validation, aggregate
// properties (mu, span, loads), and CSV round-tripping.
#include "core/instance.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dvbp {
namespace {

Instance small_instance() {
  Instance inst(2);
  inst.add(0.0, 2.0, RVec{0.5, 0.25});
  inst.add(1.0, 4.0, RVec{0.25, 0.5});
  inst.add(5.0, 6.0, RVec{1.0, 1.0});
  return inst;
}

TEST(Item, DerivedQuantities) {
  Item r(3, 1.0, 4.0, RVec{0.2, 0.6});
  EXPECT_DOUBLE_EQ(r.duration(), 3.0);
  EXPECT_EQ(r.interval(), Interval(1.0, 4.0));
  EXPECT_TRUE(r.active_at(1.0));
  EXPECT_FALSE(r.active_at(4.0));  // half-open
  EXPECT_DOUBLE_EQ(r.utilization(), 0.6 * 3.0);
}

TEST(Instance, AddAssignsSequentialIds) {
  Instance inst = small_instance();
  EXPECT_EQ(inst.size(), 3u);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(inst[i].id, static_cast<ItemId>(i));
  }
  EXPECT_FALSE(inst.validate().has_value());
}

TEST(Instance, DimFixedByFirstItem) {
  Instance inst;
  EXPECT_EQ(inst.dim(), 0u);
  inst.add(0, 1, RVec{0.5, 0.5, 0.5});
  EXPECT_EQ(inst.dim(), 3u);
  EXPECT_THROW(inst.add(0, 1, RVec{0.5}), std::invalid_argument);
}

TEST(Instance, RejectsBadItems) {
  Instance inst(1);
  EXPECT_THROW(inst.add(-1.0, 1.0, RVec{0.5}), std::invalid_argument);
  EXPECT_THROW(inst.add(1.0, 1.0, RVec{0.5}), std::invalid_argument);
  EXPECT_THROW(inst.add(2.0, 1.0, RVec{0.5}), std::invalid_argument);
  EXPECT_THROW(inst.add(0.0, 1.0, RVec{1.5}), std::invalid_argument);
  EXPECT_THROW(inst.add(0.0, 1.0, RVec{-0.1}), std::invalid_argument);
  EXPECT_EQ(inst.size(), 0u);
}

TEST(Instance, DurationsAndMu) {
  Instance inst = small_instance();
  EXPECT_DOUBLE_EQ(inst.min_duration(), 1.0);
  EXPECT_DOUBLE_EQ(inst.max_duration(), 3.0);
  EXPECT_DOUBLE_EQ(inst.mu(), 3.0);
}

TEST(Instance, MuThrowsOnEmpty) {
  Instance inst(1);
  EXPECT_THROW(inst.mu(), std::logic_error);
  EXPECT_THROW(inst.min_duration(), std::logic_error);
  EXPECT_THROW(inst.first_arrival(), std::logic_error);
}

TEST(Instance, SpanWithGap) {
  // Active on [0,4) and [5,6): span 5, not 6.
  Instance inst = small_instance();
  EXPECT_DOUBLE_EQ(inst.span(), 5.0);
  EXPECT_DOUBLE_EQ(inst.first_arrival(), 0.0);
  EXPECT_DOUBLE_EQ(inst.last_departure(), 6.0);
}

TEST(Instance, TotalAndActiveLoad) {
  Instance inst = small_instance();
  const RVec total = inst.total_size();
  EXPECT_NEAR(total[0], 1.75, 1e-12);
  EXPECT_NEAR(total[1], 1.75, 1e-12);

  const RVec at1 = inst.load_at(1.0);  // items 0 and 1 active
  EXPECT_NEAR(at1[0], 0.75, 1e-12);
  EXPECT_NEAR(at1[1], 0.75, 1e-12);
  EXPECT_EQ(inst.active_at(1.0), (std::vector<ItemId>{0, 1}));
  EXPECT_TRUE(inst.active_at(4.5).empty());
}

TEST(Instance, TotalUtilization) {
  Instance inst = small_instance();
  // 0.5*2 + 0.5*3 + 1.0*1 = 3.5
  EXPECT_NEAR(inst.total_utilization(), 3.5, 1e-12);
}

TEST(Instance, SortByArrivalIsStable) {
  Instance inst(1);
  inst.add(2.0, 3.0, RVec{0.1});
  inst.add(0.0, 1.0, RVec{0.2});
  inst.add(0.0, 2.0, RVec{0.3});
  inst.sort_by_arrival();
  EXPECT_DOUBLE_EQ(inst[0].size[0], 0.2);  // first 0-arrival keeps order
  EXPECT_DOUBLE_EQ(inst[1].size[0], 0.3);
  EXPECT_DOUBLE_EQ(inst[2].size[0], 0.1);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(inst[i].id, static_cast<ItemId>(i));
  }
}

TEST(Instance, CsvRoundTrip) {
  Instance inst = small_instance();
  const std::string csv = inst.to_csv();
  Instance back = Instance::from_csv_string(csv);
  ASSERT_EQ(back.size(), inst.size());
  EXPECT_EQ(back.dim(), inst.dim());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].arrival, inst[i].arrival);
    EXPECT_DOUBLE_EQ(back[i].departure, inst[i].departure);
    EXPECT_EQ(back[i].size, inst[i].size);
  }
}

TEST(Instance, CsvSkipsCommentsAndBlankLines) {
  const std::string text =
      "# header comment\n"
      "\n"
      "0,1,0.5\n"
      "# trailing comment\n"
      "1,2,0.25\n";
  Instance inst = Instance::from_csv_string(text);
  EXPECT_EQ(inst.size(), 2u);
  EXPECT_EQ(inst.dim(), 1u);
}

TEST(Instance, CsvRejectsMalformedLines) {
  EXPECT_THROW(Instance::from_csv_string("0,1\n"), std::invalid_argument);
  EXPECT_THROW(Instance::from_csv_string("a,b,c\n"), std::invalid_argument);
}

TEST(Instance, CsvRejectsSemanticallyInvalidRows) {
  // Parses numerically but violates item invariants.
  EXPECT_THROW(Instance::from_csv_string("1,1,0.5\n"),
               std::invalid_argument);  // zero duration
  EXPECT_THROW(Instance::from_csv_string("-1,1,0.5\n"),
               std::invalid_argument);  // negative arrival
  EXPECT_THROW(Instance::from_csv_string("0,1,1.5\n"),
               std::invalid_argument);  // oversize
  EXPECT_THROW(Instance::from_csv_string("0,1,0.5,0.5\n0,1,0.5\n"),
               std::invalid_argument);  // dimension change mid-trace
}

TEST(Instance, CsvFuzzGarbageNeverCrashes) {
  for (const char* garbage :
       {",,,\n", "0,1,\n", "nan,1,0.5\n", "0,inf,0.5\n", "0 1 0.5\n",
        "0;1;0.5\n", "\x01\x02\x03\n", "0,1,0.5,extra,fields,that,are,"
        "numbers,but,bad\n"}) {
    try {
      Instance inst = Instance::from_csv_string(garbage);
      // Accepted inputs must at least validate.
      EXPECT_FALSE(inst.validate().has_value()) << garbage;
    } catch (const std::invalid_argument&) {
      // Rejection is the expected outcome for most of these.
    }
  }
}

TEST(Instance, ValidateDetectsIdTampering) {
  // validate() re-derives every invariant; simulate a corrupted id by
  // constructing via CSV then checking a fresh instance is clean.
  Instance inst = small_instance();
  EXPECT_FALSE(inst.validate().has_value());
}

}  // namespace
}  // namespace dvbp
