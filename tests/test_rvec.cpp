// Unit and property tests for RVec, including the Proposition 1 norm
// identities the paper's analysis rests on.
#include "core/rvec.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "stats/rng.hpp"

namespace dvbp {
namespace {

TEST(RVec, DefaultIsEmpty) {
  RVec v;
  EXPECT_EQ(v.dim(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(RVec, ZeroConstructor) {
  RVec v(3);
  EXPECT_EQ(v.dim(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(v[i], 0.0);
}

TEST(RVec, FillConstructor) {
  RVec v(4, 0.25);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(v[i], 0.25);
}

TEST(RVec, InitializerList) {
  RVec v{0.1, 0.2, 0.3};
  EXPECT_EQ(v.dim(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.1);
  EXPECT_DOUBLE_EQ(v[1], 0.2);
  EXPECT_DOUBLE_EQ(v[2], 0.3);
}

TEST(RVec, OnesAndZerosFactories) {
  EXPECT_DOUBLE_EQ(RVec::ones(5).l1(), 5.0);
  EXPECT_DOUBLE_EQ(RVec::zeros(5).l1(), 0.0);
}

TEST(RVec, AxisFactory) {
  RVec v = RVec::axis(3, 1, 0.9, 0.05);
  EXPECT_DOUBLE_EQ(v[0], 0.05);
  EXPECT_DOUBLE_EQ(v[1], 0.9);
  EXPECT_DOUBLE_EQ(v[2], 0.05);
}

TEST(RVec, AxisFactoryRejectsOutOfRange) {
  EXPECT_THROW(RVec::axis(3, 3, 1.0), std::out_of_range);
}

TEST(RVec, HeapStorageBeyondInlineDim) {
  const std::size_t d = RVec::kInlineDim + 4;
  RVec v(d, 0.5);
  EXPECT_EQ(v.dim(), d);
  EXPECT_DOUBLE_EQ(v.l1(), 0.5 * static_cast<double>(d));
  RVec copy = v;
  EXPECT_EQ(copy, v);
  RVec moved = std::move(copy);
  EXPECT_EQ(moved, v);
}

TEST(RVec, CopyAndMoveSemantics) {
  RVec a{0.1, 0.2};
  RVec b = a;          // copy
  EXPECT_EQ(a, b);
  RVec c = std::move(b);  // move
  EXPECT_EQ(a, c);
  c = a;  // copy assign
  EXPECT_EQ(a, c);
  RVec d;
  d = std::move(c);  // move assign
  EXPECT_EQ(a, d);
}

TEST(RVec, SelfAssignment) {
  RVec a{0.3, 0.4};
  a = *&a;
  EXPECT_DOUBLE_EQ(a[0], 0.3);
  EXPECT_DOUBLE_EQ(a[1], 0.4);
}

TEST(RVec, Arithmetic) {
  RVec a{0.1, 0.5};
  RVec b{0.2, 0.25};
  EXPECT_EQ(a + b, (RVec{0.1 + 0.2, 0.75}));
  RVec diff = (a + b) - b;
  EXPECT_NEAR(diff[0], 0.1, 1e-15);
  EXPECT_NEAR(diff[1], 0.5, 1e-15);
  EXPECT_EQ(a * 2.0, (RVec{0.2, 1.0}));
  EXPECT_EQ(2.0 * a, a * 2.0);
}

TEST(RVec, Norms) {
  RVec v{0.3, 0.4};
  EXPECT_DOUBLE_EQ(v.linf(), 0.4);
  EXPECT_DOUBLE_EQ(v.l1(), 0.7);
  EXPECT_DOUBLE_EQ(v.lp(2.0), 0.5);
}

TEST(RVec, LpRejectsBelowOne) {
  RVec v{0.5};
  EXPECT_THROW(v.lp(0.5), std::invalid_argument);
}

TEST(RVec, LpEqualsL1AtOne) {
  RVec v{0.3, 0.4, 0.1};
  EXPECT_NEAR(v.lp(1.0), v.l1(), 1e-12);
}

TEST(RVec, FitsInCapacity) {
  EXPECT_TRUE((RVec{1.0, 0.5}.fits_in_capacity(1.0)));
  EXPECT_FALSE((RVec{1.1, 0.5}.fits_in_capacity(1.0)));
  // Tolerance absorbs floating noise at the boundary.
  EXPECT_TRUE((RVec{1.0 + 1e-12}.fits_in_capacity(1.0)));
}

TEST(RVec, FitsWith) {
  RVec load{0.6, 0.3};
  EXPECT_TRUE(load.fits_with(RVec{0.4, 0.7}));
  EXPECT_FALSE(load.fits_with(RVec{0.41, 0.1}));
}

TEST(RVec, FitsWithExactBoundary) {
  // Exactly-full bins are feasible: the Thm 5 construction fills one
  // dimension to exactly 1.
  RVec load{1.0 - 0.25};
  EXPECT_TRUE(load.fits_with(RVec{0.25}));
  EXPECT_FALSE(load.fits_with(RVec{0.2500001}));
}

TEST(RVec, FitsWithCapacity) {
  RVec load{1.2, 0.8};
  EXPECT_TRUE(load.fits_with_capacity(RVec{0.3, 0.7}, 1.5));
  EXPECT_FALSE(load.fits_with_capacity(RVec{0.31, 0.1}, 1.5));
  // cap = 1 recovers fits_with.
  RVec half{0.5, 0.5};
  EXPECT_EQ(half.fits_with(RVec{0.5, 0.5}),
            half.fits_with_capacity(RVec{0.5, 0.5}, 1.0));
}

TEST(RVec, ClampNonnegative) {
  RVec v{0.5};
  v -= RVec{0.5};
  v -= RVec{1e-17};
  v.clamp_nonnegative();
  EXPECT_GE(v[0], 0.0);
}

TEST(RVec, MaxWith) {
  RVec a{0.1, 0.9};
  a.max_with(RVec{0.5, 0.2});
  EXPECT_EQ(a, (RVec{0.5, 0.9}));
}

TEST(RVec, IsNonnegative) {
  EXPECT_TRUE((RVec{0.0, 0.5}).is_nonnegative());
  EXPECT_FALSE((RVec{-0.01, 0.5}).is_nonnegative());
  EXPECT_TRUE((RVec{-1e-12, 0.5}).is_nonnegative(1e-9));
}

TEST(RVec, StreamOutput) {
  std::ostringstream os;
  os << RVec{0.5, 0.25};
  EXPECT_EQ(os.str(), "(0.5, 0.25)");
}

TEST(RVec, SumOfVectors) {
  std::vector<RVec> vs{{0.1, 0.2}, {0.3, 0.4}};
  RVec total = sum(vs);
  EXPECT_NEAR(total[0], 0.4, 1e-12);
  EXPECT_NEAR(total[1], 0.6, 1e-12);
  EXPECT_EQ(sum({}).dim(), 0u);
}

// ---- Inline/heap boundary (kInlineDim = 8) ----------------------------
//
// d = 7, 8 live entirely in the inline array; d = 9, 16 spill to heap
// storage. These used to be guarded by assert() only, so a Release build
// would silently read/write out of bounds on mismatched dims (benign by
// luck for d <= kInlineDim, corrupting for d > kInlineDim). The guards
// are now typed exceptions and these tests run with asserts compiled out
// too.

class BoundaryTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoundaryTest, RoundTripValuesAcrossStorageKinds) {
  const std::size_t d = GetParam();
  RVec v(d);
  for (std::size_t j = 0; j < d; ++j) v[j] = 0.01 * static_cast<double>(j + 1);
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_DOUBLE_EQ(v[j], 0.01 * static_cast<double>(j + 1)) << "d=" << d;
  }
  EXPECT_EQ(v.dim(), d);
}

TEST_P(BoundaryTest, CopyMoveAndAssignPreserveAllLanes) {
  const std::size_t d = GetParam();
  RVec v(d);
  for (std::size_t j = 0; j < d; ++j) v[j] = 1.0 / static_cast<double>(j + 2);
  RVec copied = v;
  EXPECT_EQ(copied, v);
  RVec moved = std::move(copied);
  EXPECT_EQ(moved, v);
  RVec assigned;
  assigned = v;
  EXPECT_EQ(assigned, v);
  RVec move_assigned(3, 0.5);  // different dim, forces storage swap
  move_assigned = std::move(moved);
  EXPECT_EQ(move_assigned, v);
}

TEST_P(BoundaryTest, MovedFromIsNormalizedEmpty) {
  const std::size_t d = GetParam();
  RVec v(d, 0.25);
  RVec sink = std::move(v);
  // Moved-from RVecs are fully normalized (dim 0, cleared storage), so
  // reuse is well-defined regardless of which side of kInlineDim d was on.
  EXPECT_EQ(v.dim(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(v.empty());
  v = RVec(d, 0.75);
  EXPECT_DOUBLE_EQ(v[d - 1], 0.75);
}

TEST_P(BoundaryTest, DimensionMismatchThrowsNotUB) {
  const std::size_t d = GetParam();
  RVec v(d, 0.1);
  RVec bigger(d + 1, 0.1);
  RVec smaller(d - 1, 0.1);
  EXPECT_THROW(v += bigger, std::invalid_argument);
  EXPECT_THROW(v -= bigger, std::invalid_argument);
  EXPECT_THROW(v += smaller, std::invalid_argument);
  EXPECT_THROW((void)v.fits_with(bigger), std::invalid_argument);
  EXPECT_THROW((void)v.fits_with_capacity(bigger, 2.0),
               std::invalid_argument);
  EXPECT_THROW(v.max_with(smaller), std::invalid_argument);
  // The failed ops must not have modified v.
  for (std::size_t j = 0; j < d; ++j) EXPECT_DOUBLE_EQ(v[j], 0.1);
}

TEST_P(BoundaryTest, ArithmeticAndFitsMatchScalarReference) {
  const std::size_t d = GetParam();
  Xoshiro256pp rng(7777 + d);
  for (int rep = 0; rep < 20; ++rep) {
    RVec load(d), add(d);
    bool ref_fits = true;
    for (std::size_t j = 0; j < d; ++j) {
      load[j] = rng.uniform(0.0, 0.8);
      add[j] = rng.uniform(0.0, 0.5);
      if (load[j] + add[j] > 1.0 + kCapacityEps) ref_fits = false;
    }
    EXPECT_EQ(load.fits_with(add), ref_fits) << "d=" << d;
    RVec sum_v = load;
    sum_v += add;
    for (std::size_t j = 0; j < d; ++j) {
      EXPECT_DOUBLE_EQ(sum_v[j], load[j] + add[j]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AroundInlineDim, BoundaryTest,
                         ::testing::Values<std::size_t>(
                             RVec::kInlineDim - 1, RVec::kInlineDim,
                             RVec::kInlineDim + 1, 2 * RVec::kInlineDim));

// ---- Proposition 1 property tests -------------------------------------

class Prop1Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Prop1Test, ScalingHomogeneity) {
  const std::size_t d = GetParam();
  Xoshiro256pp rng(42 + d);
  for (int rep = 0; rep < 50; ++rep) {
    RVec v(d);
    for (std::size_t j = 0; j < d; ++j) v[j] = rng.uniform();
    const double c = rng.uniform(0.0, 10.0);
    EXPECT_NEAR((v * c).linf(), c * v.linf(), 1e-12);
  }
}

TEST_P(Prop1Test, TriangleAndDimensionBounds) {
  // ||sum v_i||_inf <= sum ||v_i||_inf <= d * ||sum v_i||_inf
  const std::size_t d = GetParam();
  Xoshiro256pp rng(1234 + d);
  for (int rep = 0; rep < 50; ++rep) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 9));
    RVec total(d);
    double sum_norms = 0.0;
    for (int i = 0; i < n; ++i) {
      RVec v(d);
      for (std::size_t j = 0; j < d; ++j) v[j] = rng.uniform();
      total += v;
      sum_norms += v.linf();
    }
    EXPECT_LE(total.linf(), sum_norms + 1e-12);
    EXPECT_LE(sum_norms, static_cast<double>(d) * total.linf() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, Prop1Test,
                         ::testing::Values<std::size_t>(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace dvbp
