// Unit tests for src/persist/: serialization primitives, journal wire
// format and torn-tail handling, checkpoint atomicity/fallback, the
// per-policy save/restore contract (bit-exact futures), and the
// DurableDispatcher reopen path. The crash-point fuzz lives in
// test_persist_recovery.cpp.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/dispatcher.hpp"
#include "core/event.hpp"
#include "core/policies/registry.hpp"
#include "core/serial.hpp"
#include "core/simulator.hpp"
#include "gen/uniform.hpp"
#include "packing_hash.hpp"
#include "persist/checkpoint.hpp"
#include "persist/durable.hpp"
#include "persist/fault.hpp"
#include "persist/journal.hpp"
#include "persist/recovery.hpp"

namespace dvbp {
namespace {

namespace fs = std::filesystem;
using persist::FsyncPolicy;
using persist::JournalRecord;
using persist::JournalWriter;
using persist::OpKind;

constexpr std::uint64_t kPolicySeed = 0xD1CEu;

const char* const kPolicies[] = {
    "MoveToFront", "FirstFit",        "BestFit",     "NextFit",
    "LastFit",     "RandomFit",       "WorstFit",    "MinExtensionFit",
    "HarmonicFit", "DurationClassFit"};

/// Self-cleaning unique temp directory (not created; the code under test
/// is responsible for create_directories).
struct TempDir {
  fs::path path;
  TempDir() {
    static int counter = 0;
    path = fs::temp_directory_path() /
           ("dvbp_persist_test_" + std::to_string(++counter) + "_" +
            std::to_string(static_cast<unsigned>(::getpid())));
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

Instance test_instance(std::size_t n = 240) {
  gen::UniformParams params;
  params.d = 2;
  params.n = n;
  params.mu = 12;
  params.span = 100;
  params.bin_size = 9;
  return gen::uniform_instance(params, 0xFEED);
}

/// Feeds events [begin, end) to a serial dispatcher. Instances are
/// arrival-sorted, so the dense JobId equals the item id.
void feed(Dispatcher& d, const Instance& inst,
          const std::vector<Event>& events, std::size_t begin,
          std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    const Event& ev = events[i];
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      d.arrive(item.arrival, item.size, item.departure);
    } else {
      d.depart(ev.time, item.id);
    }
  }
}

TEST(Serial, WriterReaderRoundtrip) {
  serial::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-0.1);
  w.str("packing");
  w.blob({1, 2, 3});
  serial::Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(-0.1));
  EXPECT_EQ(r.str(), "packing");
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.u8(), serial::SerialError);
}

TEST(Serial, Crc32MatchesIeeeCheckValue) {
  const std::uint8_t check[] = {'1', '2', '3', '4', '5',
                                '6', '7', '8', '9'};
  EXPECT_EQ(serial::crc32(check, sizeof(check)), 0xCBF43926u);
}

TEST(Journal, FsyncPolicySpellings) {
  EXPECT_EQ(persist::parse_fsync_policy("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(persist::parse_fsync_policy("interval"),
            FsyncPolicy::kInterval);
  EXPECT_EQ(persist::parse_fsync_policy("none"), FsyncPolicy::kNone);
  EXPECT_THROW(persist::parse_fsync_policy("sometimes"),
               std::invalid_argument);
  EXPECT_EQ(persist::fsync_policy_name(FsyncPolicy::kInterval), "interval");
}

TEST(Journal, AppendCommitScanRoundtrip) {
  TempDir dir;
  RVec size(2);
  size[0] = 0.25;
  size[1] = 0.1;
  {
    JournalWriter writer(dir.str(), 1, {});
    EXPECT_EQ(writer.append(OpKind::kArrive, 1.5, 7, 9.25, &size), 1u);
    EXPECT_EQ(writer.append(OpKind::kDepart, 2.5, 7), 2u);
    EXPECT_EQ(writer.append(OpKind::kAdvance, 3.5, 0), 3u);
    writer.commit();
  }
  const persist::JournalScan scan = persist::scan_journal(dir.str());
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 3u);
  const JournalRecord& arrive = scan.records[0];
  EXPECT_EQ(arrive.seq, 1u);
  EXPECT_EQ(arrive.kind, OpKind::kArrive);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(arrive.time),
            std::bit_cast<std::uint64_t>(1.5));
  EXPECT_EQ(arrive.job, 7u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(arrive.expected_departure),
            std::bit_cast<std::uint64_t>(9.25));
  ASSERT_EQ(arrive.size.dim(), 2u);
  EXPECT_EQ(arrive.size[0], 0.25);
  EXPECT_EQ(arrive.size[1], 0.1);
  EXPECT_EQ(scan.records[1].kind, OpKind::kDepart);
  EXPECT_EQ(scan.records[2].kind, OpKind::kAdvance);
}

TEST(Journal, UncommittedFramesAreNotDurable) {
  TempDir dir;
  {
    JournalWriter writer(dir.str(), 1, {});
    writer.append(OpKind::kAdvance, 1.0, 0);
    writer.commit();
    writer.append(OpKind::kAdvance, 2.0, 0);  // never committed
  }
  EXPECT_EQ(persist::scan_journal(dir.str()).records.size(), 1u);
}

TEST(Journal, TornTailDetectedAndTruncated) {
  TempDir dir;
  {
    JournalWriter writer(dir.str(), 1, {});
    for (int i = 0; i < 3; ++i) {
      writer.append(OpKind::kAdvance, static_cast<Time>(i), 0);
    }
    writer.commit();
  }
  const auto segments = persist::journal_segments(dir.str());
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream out(segments[0], std::ios::binary | std::ios::app);
    out.write("\x05garbage", 8);  // looks like a frame header prefix
  }
  persist::JournalScan scan = persist::scan_journal(dir.str());
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.tail_bytes_discarded, 8u);
  persist::truncate_torn_tail(scan);
  scan = persist::scan_journal(dir.str());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 3u);
  // The truncated segment accepts appends again, at the right sequence.
  {
    JournalWriter writer(dir.str(), 4, {});
    writer.append(OpKind::kAdvance, 9.0, 0);
    writer.commit();
  }
  scan = persist::scan_journal(dir.str());
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records.back().seq, 4u);
}

TEST(Journal, RotateStartsNewSegmentAndDeletesOld) {
  TempDir dir;
  JournalWriter writer(dir.str(), 1, {});
  for (int i = 0; i < 5; ++i) {
    writer.append(OpKind::kAdvance, static_cast<Time>(i), 0);
  }
  writer.commit();
  writer.rotate();
  writer.append(OpKind::kAdvance, 10.0, 0);
  writer.commit();
  EXPECT_EQ(persist::journal_segments(dir.str()).size(), 1u);
  const persist::JournalScan scan = persist::scan_journal(dir.str());
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].seq, 6u);
}

TEST(Journal, WriterPoisonedAfterInjectedCommitFault) {
  TempDir dir;
  persist::set_fault_hook([](std::string_view point) {
    if (point == "journal.commit.written") {
      throw persist::FaultInjected(point);
    }
  });
  JournalWriter writer(dir.str(), 1, {});
  writer.append(OpKind::kAdvance, 1.0, 0);
  EXPECT_THROW(writer.commit(), persist::FaultInjected);
  persist::clear_fault_hook();
  // Sticky: a torn tail must never be buried under newer frames.
  EXPECT_THROW(writer.append(OpKind::kAdvance, 2.0, 0),
               persist::PersistError);
  EXPECT_THROW(writer.commit(), persist::PersistError);
}

TEST(Checkpoint, RoundtripNewestWinsAndCorruptFallsBack) {
  TempDir dir;
  persist::CheckpointData a;
  a.seq = 10;
  a.policy_name = "FirstFit";
  a.dispatcher_state = {1, 2, 3};
  a.policy_state = {4};
  persist::write_checkpoint(dir.str(), a);
  auto loaded = persist::load_newest_checkpoint(dir.str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 10u);
  EXPECT_EQ(loaded->policy_name, "FirstFit");
  EXPECT_EQ(loaded->dispatcher_state, a.dispatcher_state);
  EXPECT_EQ(loaded->policy_state, a.policy_state);
  EXPECT_TRUE(loaded->extra.empty());

  // A newer checkpoint supersedes (and GCs) the old one.
  persist::CheckpointData b = a;
  b.seq = 20;
  b.policy_state = {9, 9};
  persist::write_checkpoint(dir.str(), b);
  ASSERT_EQ(persist::checkpoint_files(dir.str()).size(), 1u);
  EXPECT_EQ(persist::load_newest_checkpoint(dir.str())->seq, 20u);

  // A corrupt newest file (here: a bogus higher-seq copy with a flipped
  // payload byte) is skipped and load falls back to the older valid one.
  const std::string valid = persist::checkpoint_files(dir.str()).front();
  const std::string bogus =
      dir.str() + "/checkpoint-000000000000001e.ckpt";
  fs::copy_file(valid, bogus);
  {
    std::fstream f(bogus, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(12);
    char byte = 0;
    f.get(byte);
    f.seekp(12);
    f.put(static_cast<char>(byte ^ 0x5A));
  }
  ASSERT_EQ(persist::checkpoint_files(dir.str()).size(), 2u);
  loaded = persist::load_newest_checkpoint(dir.str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seq, 20u) << "corrupt newest must fall back to older";
}

// The save/restore contract, policy by policy: after running a prefix of
// a workload, checkpointed state restored into a fresh dispatcher/policy
// pair must (a) hash bit-identically and (b) make identical decisions on
// the entire suffix. This is the foundation the crash fuzz builds on.
TEST(StateRoundtrip, AllPoliciesBitExactAcrossSaveRestore) {
  const Instance inst = test_instance();
  const std::vector<Event> events = build_event_stream(inst);
  const std::size_t half = events.size() / 2;
  for (const char* name : kPolicies) {
    SCOPED_TRACE(name);
    PolicyPtr policy_a = make_policy(name, kPolicySeed);
    Dispatcher a(inst.dim(), *policy_a);
    feed(a, inst, events, 0, half);

    serial::Writer disp_out;
    a.save_state(disp_out);
    serial::Writer pol_out;
    policy_a->save_state(pol_out);

    PolicyPtr policy_b = make_policy(name, kPolicySeed + 17);  // different
    Dispatcher b(inst.dim(), *policy_b);
    serial::Reader disp_in(disp_out.bytes());
    b.restore_state(disp_in);
    policy_b->reset();
    serial::Reader pol_in(pol_out.bytes());
    policy_b->restore_state(pol_in);

    ASSERT_EQ(dispatcher_state_hash(a), dispatcher_state_hash(b));
    feed(a, inst, events, half, events.size());
    feed(b, inst, events, half, events.size());
    EXPECT_EQ(dispatcher_state_hash(a), dispatcher_state_hash(b))
        << "futures diverged after restore";
  }
}

TEST(StateRoundtrip, RestoreIntoUsedDispatcherThrows) {
  const Instance inst = test_instance(40);
  const std::vector<Event> events = build_event_stream(inst);
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  Dispatcher a(inst.dim(), *policy);
  feed(a, inst, events, 0, events.size() / 2);
  serial::Writer out;
  a.save_state(out);
  serial::Reader in(out.bytes());
  EXPECT_THROW(a.restore_state(in), std::logic_error);
}

TEST(Durable, ReopenContinuesWhereTheRunLeftOff) {
  const Instance inst = test_instance();
  const std::vector<Event> events = build_event_stream(inst);
  const std::size_t half = events.size() / 2;
  TempDir dir;

  persist::DurableOptions opts;
  opts.dir = dir.str();
  opts.fsync = FsyncPolicy::kNone;
  opts.checkpoint_every = 64;
  {
    PolicyPtr policy = make_policy("MoveToFront", kPolicySeed);
    persist::DurableDispatcher durable(inst.dim(), *policy, opts);
    EXPECT_FALSE(durable.recovery().had_checkpoint);
    for (std::size_t i = 0; i < half; ++i) {
      const Event& ev = events[i];
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        durable.arrive(item.arrival, item.size, item.departure);
      } else {
        durable.depart(ev.time, item.id);
      }
    }
  }  // clean shutdown mid-stream

  PolicyPtr policy = make_policy("MoveToFront", kPolicySeed);
  persist::DurableDispatcher durable(inst.dim(), *policy, opts);
  EXPECT_TRUE(durable.recovery().had_checkpoint);
  EXPECT_EQ(durable.recovery().last_seq, half);

  PolicyPtr ref_policy = make_policy("MoveToFront", kPolicySeed);
  Dispatcher reference(inst.dim(), *ref_policy);
  feed(reference, inst, events, 0, half);
  ASSERT_EQ(dispatcher_state_hash(reference),
            dispatcher_state_hash(durable.dispatcher()));

  // And the recovered run's future coincides with the uninterrupted one.
  for (std::size_t i = half; i < events.size(); ++i) {
    const Event& ev = events[i];
    const Item& item = inst[ev.item];
    if (ev.kind == EventKind::kArrival) {
      durable.arrive(item.arrival, item.size, item.departure);
    } else {
      durable.depart(ev.time, item.id);
    }
  }
  feed(reference, inst, events, half, events.size());
  EXPECT_EQ(dispatcher_state_hash(reference),
            dispatcher_state_hash(durable.dispatcher()));
}

TEST(Durable, PolicyMismatchRefusesToRecover) {
  const Instance inst = test_instance(40);
  const std::vector<Event> events = build_event_stream(inst);
  TempDir dir;
  persist::DurableOptions opts;
  opts.dir = dir.str();
  opts.fsync = FsyncPolicy::kNone;
  {
    PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
    persist::DurableDispatcher durable(inst.dim(), *policy, opts);
    for (const Event& ev : events) {
      const Item& item = inst[ev.item];
      if (ev.kind == EventKind::kArrival) {
        durable.arrive(item.arrival, item.size, item.departure);
      } else {
        durable.depart(ev.time, item.id);
      }
    }
    durable.checkpoint();
  }
  PolicyPtr other = make_policy("BestFit", kPolicySeed);
  EXPECT_THROW(persist::DurableDispatcher(inst.dim(), *other, opts),
               persist::PersistError);
}

TEST(Durable, ColdStartReportsNothingRecovered) {
  TempDir dir;
  persist::DurableOptions opts;
  opts.dir = dir.str();
  PolicyPtr policy = make_policy("FirstFit", kPolicySeed);
  persist::DurableDispatcher durable(2, *policy, opts);
  EXPECT_FALSE(durable.recovery().had_checkpoint);
  EXPECT_EQ(durable.recovery().replayed_ops, 0u);
  EXPECT_EQ(durable.recovery().last_seq, 0u);
  EXPECT_EQ(durable.next_seq(), 1u);
}

}  // namespace
}  // namespace dvbp
