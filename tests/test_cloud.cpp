// Tests for the cloud substrate: server specs, billing models, the cluster
// front-end, and timeline metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/billing.hpp"
#include "cloud/cluster.hpp"
#include "cloud/metrics.hpp"
#include "cloud/server.hpp"
#include "core/policies/registry.hpp"

namespace dvbp::cloud {
namespace {

ServerSpec gpu_server() {
  ServerSpec spec;
  spec.name = "gpu.large";
  spec.resource_names = {"vCPU", "GiB", "GPU"};
  spec.capacity = RVec{16.0, 64.0, 4.0};
  return spec;
}

TEST(ServerSpec, ValidatesShape) {
  ServerSpec spec = gpu_server();
  EXPECT_NO_THROW(spec.validate());
  spec.capacity = RVec{};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = gpu_server();
  spec.resource_names = {"vCPU"};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = gpu_server();
  spec.capacity[1] = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ServerSpec, NormalizesDemands) {
  const ServerSpec spec = gpu_server();
  const RVec norm = spec.normalize(RVec{8.0, 16.0, 1.0});
  EXPECT_DOUBLE_EQ(norm[0], 0.5);
  EXPECT_DOUBLE_EQ(norm[1], 0.25);
  EXPECT_DOUBLE_EQ(norm[2], 0.25);
  EXPECT_THROW(spec.normalize(RVec{32.0, 1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(spec.normalize(RVec{1.0, 1.0}), std::invalid_argument);
}

TEST(Billing, ContinuousIsLinear) {
  ContinuousBilling billing(2.0);
  EXPECT_DOUBLE_EQ(billing.charge({0.0, 3.5}), 7.0);
  EXPECT_DOUBLE_EQ(billing.charge({1.0, 1.0}), 0.0);
  EXPECT_EQ(billing.name(), "continuous");
}

TEST(Billing, QuantizedRoundsUpStartedQuanta) {
  QuantizedBilling billing(/*quantum=*/1.0, /*rate=*/3.0);
  EXPECT_DOUBLE_EQ(billing.charge({0.0, 0.2}), 3.0);   // 1 started hour
  EXPECT_DOUBLE_EQ(billing.charge({0.0, 1.0}), 3.0);   // exactly 1
  EXPECT_DOUBLE_EQ(billing.charge({0.0, 1.01}), 6.0);  // 2 started
  EXPECT_DOUBLE_EQ(billing.charge({2.0, 2.0}), 0.0);   // empty rental
}

TEST(Billing, QuantizedValidatesQuantum) {
  EXPECT_THROW(QuantizedBilling(0.0, 1.0), std::invalid_argument);
}

TEST(Cluster, DispatchesAndBills) {
  const ServerSpec spec = gpu_server();
  std::vector<Job> jobs{
      {"a", 0.0, 4.0, RVec{8.0, 32.0, 2.0}},
      {"b", 0.0, 4.0, RVec{8.0, 32.0, 2.0}},   // shares a server with a
      {"c", 1.0, 3.0, RVec{16.0, 16.0, 1.0}},  // needs its own server
  };
  PolicyPtr policy = make_policy("FirstFit");
  ContinuousBilling billing(1.0);
  const ClusterReport report =
      run_cluster(spec, jobs, *policy, billing);

  EXPECT_EQ(report.servers_rented, 2u);
  EXPECT_EQ(report.peak_concurrent, 2u);
  EXPECT_DOUBLE_EQ(report.total_usage_time, 4.0 + 2.0);
  EXPECT_DOUBLE_EQ(report.total_bill, 6.0);
  ASSERT_EQ(report.placement.size(), 3u);
  EXPECT_EQ(report.placement[0], report.placement[1]);
  EXPECT_NE(report.placement[0], report.placement[2]);
  ASSERT_EQ(report.rentals.size(), 2u);
  EXPECT_EQ(report.rentals[0].jobs_served, 2u);
}

TEST(Cluster, SortsJobsByArrival) {
  const ServerSpec spec = gpu_server();
  // Deliberately out of order; the cluster must feed them in arrival order.
  std::vector<Job> jobs{
      {"late", 5.0, 6.0, RVec{1.0, 1.0, 1.0}},
      {"early", 0.0, 1.0, RVec{1.0, 1.0, 1.0}},
  };
  PolicyPtr policy = make_policy("FirstFit");
  ContinuousBilling billing;
  const ClusterReport report = run_cluster(spec, jobs, *policy, billing);
  EXPECT_EQ(report.servers_rented, 2u);  // disjoint in time, bins don't reopen
  EXPECT_DOUBLE_EQ(report.total_usage_time, 2.0);
}

TEST(Cluster, QuantizedBillExceedsContinuous) {
  const ServerSpec spec = gpu_server();
  std::vector<Job> jobs{
      {"a", 0.0, 2.5, RVec{8.0, 32.0, 2.0}},
      {"b", 3.0, 3.7, RVec{8.0, 32.0, 2.0}},
  };
  PolicyPtr p1 = make_policy("FirstFit");
  PolicyPtr p2 = make_policy("FirstFit");
  const double continuous =
      run_cluster(spec, jobs, *p1, ContinuousBilling(1.0)).total_bill;
  const double quantized =
      run_cluster(spec, jobs, *p2, QuantizedBilling(1.0, 1.0)).total_bill;
  EXPECT_DOUBLE_EQ(continuous, 3.2);
  EXPECT_DOUBLE_EQ(quantized, 3.0 + 1.0);  // ceil(2.5) + ceil(0.7)
}

TEST(Cluster, UtilizationBetweenZeroAndOne) {
  const ServerSpec spec = gpu_server();
  std::vector<Job> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back({"j" + std::to_string(i), static_cast<Time>(i % 5),
                    static_cast<Time>(i % 5 + 2), RVec{4.0, 8.0, 1.0}});
  }
  PolicyPtr policy = make_policy("MoveToFront");
  ContinuousBilling billing;
  const ClusterReport report = run_cluster(spec, jobs, *policy, billing);
  EXPECT_GT(report.avg_utilization, 0.0);
  EXPECT_LE(report.avg_utilization, 1.0 + 1e-9);
}

TEST(Metrics, StepSeriesAverageAndPeak) {
  StepSeries s;
  s.steps = {{0.0, 1.0}, {1.0, 3.0}, {3.0, 0.0}};
  // [0,1) at 1, [1,3) at 3 -> average (1 + 6)/3.
  EXPECT_NEAR(s.time_average(), 7.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.peak(), 3.0);
  StepSeries empty;
  EXPECT_DOUBLE_EQ(empty.time_average(), 0.0);
  EXPECT_DOUBLE_EQ(empty.peak(), 0.0);
}

TEST(Metrics, OpenBinSeriesNeedsTimeline) {
  Instance inst(1);
  inst.add(0.0, 2.0, RVec{0.5});
  PolicyPtr policy = make_policy("FirstFit");
  const SimResult no_tl = simulate(inst, *policy);
  EXPECT_THROW(open_bin_series(no_tl), std::invalid_argument);
  const SimResult with_tl =
      simulate(inst, *policy, {.record_timeline = true});
  const StepSeries series = open_bin_series(with_tl);
  EXPECT_DOUBLE_EQ(series.peak(), 1.0);
}

TEST(Metrics, UtilizationSeriesTracksLoad) {
  Instance inst(1);
  inst.add(0.0, 2.0, RVec{0.5});
  inst.add(1.0, 2.0, RVec{0.4});
  PolicyPtr policy = make_policy("FirstFit");
  const SimResult sim = simulate(inst, *policy, {.record_timeline = true});
  const StepSeries series = utilization_series(inst, sim);
  // [0,1): 0.5/1 bin; [1,2): 0.9/1 bin; [2,-): 0.
  ASSERT_EQ(series.steps.size(), 3u);
  EXPECT_NEAR(series.steps[0].second, 0.5, 1e-12);
  EXPECT_NEAR(series.steps[1].second, 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(series.steps[2].second, 0.0);
}

TEST(Metrics, DegenerateSeriesProduceNoNansOrDivisionsByZero) {
  // Empty series: both summaries are defined and zero.
  StepSeries empty;
  EXPECT_DOUBLE_EQ(empty.time_average(), 0.0);
  EXPECT_DOUBLE_EQ(empty.peak(), 0.0);

  // Single-timestamp series: no support to average over; the lone value is
  // reported instead of 0/0.
  StepSeries single;
  single.steps = {{3.0, 5.0}};
  EXPECT_DOUBLE_EQ(single.time_average(), 5.0);
  EXPECT_DOUBLE_EQ(single.peak(), 5.0);

  // Zero-length support (all steps at one timestamp): total time is 0, so
  // the average must fall back, not divide by zero.
  StepSeries zero_span;
  zero_span.steps = {{1.0, 4.0}, {1.0, 2.0}};
  const double avg = zero_span.time_average();
  EXPECT_FALSE(std::isnan(avg));
  EXPECT_DOUBLE_EQ(avg, 2.0);
}

TEST(Metrics, SeriesFromSingleEventBatchInstant) {
  // All arrivals and all departures land on single timestamps -> the
  // timeline has exactly two batches and the series stay finite.
  Instance inst(1);
  inst.add(0.0, 1.0, RVec{0.5});
  inst.add(0.0, 1.0, RVec{0.4});
  PolicyPtr policy = make_policy("FirstFit");
  const SimResult sim = simulate(inst, *policy, {.record_timeline = true});
  const StepSeries bins = open_bin_series(sim);
  const StepSeries util = utilization_series(inst, sim);
  for (const auto& [t, v] : bins.steps) EXPECT_FALSE(std::isnan(v)) << t;
  for (const auto& [t, v] : util.steps) EXPECT_FALSE(std::isnan(v)) << t;
  EXPECT_DOUBLE_EQ(bins.peak(), 1.0);
  EXPECT_NEAR(bins.time_average(), 1.0, 1e-12);
  EXPECT_NEAR(util.time_average(), 0.9, 1e-12);
}

TEST(Metrics, UtilizationIsZeroNotNanWhileAllBinsAreClosed) {
  // Two bursts separated by a dead interval [1, 2) where every bin is
  // closed: utilization there must be exactly 0 (no 0/0).
  Instance inst(2);
  inst.add(0.0, 1.0, RVec{0.5, 0.5});
  inst.add(2.0, 3.0, RVec{0.6, 0.2});
  PolicyPtr policy = make_policy("FirstFit");
  const SimResult sim = simulate(inst, *policy, {.record_timeline = true});
  const StepSeries util = utilization_series(inst, sim);
  bool saw_dead_interval = false;
  for (const auto& [t, v] : util.steps) {
    EXPECT_FALSE(std::isnan(v)) << t;
    if (t >= 1.0 && t < 2.0) {
      saw_dead_interval = true;
      EXPECT_DOUBLE_EQ(v, 0.0);
    }
  }
  EXPECT_TRUE(saw_dead_interval);
  EXPECT_FALSE(std::isnan(util.time_average()));
  EXPECT_FALSE(std::isnan(util.peak()));
}

}  // namespace
}  // namespace dvbp::cloud
